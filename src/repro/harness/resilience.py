"""Fault-tolerant execution layer for the run service.

The evaluation matrix is dominated by data-dependent irregularity: cell
cost varies by orders of magnitude across (algorithm, graph) pairs, so
long-tail cells, hung workers, dead ``ProcessPoolExecutor`` children and
half-written cache files are the norm at scale, not the exception.  This
module makes :class:`~repro.harness.service.RunService` survive them:

* **Bounded retries with exponential backoff + deterministic jitter**
  (:class:`RetryPolicy`): transient failures — injected faults, worker
  death, ``BrokenProcessPool``, cache I/O errors, per-cell timeouts —
  are retried up to ``max_attempts`` times.  Jitter is derived from a
  hash of the cell key and attempt number, never from global RNG state,
  so a retried matrix is exactly reproducible.
* **Per-cell timeouts with cancellation**: each attempt runs on a
  dedicated thread and is abandoned at the deadline (``CellTimeoutError``
  is transient, so the cell is retried).  A genuinely wedged attempt
  can only be *abandoned*, not killed — the CI ``pytest-timeout``
  ceiling is the backstop of last resort.
* **Graceful degradation**: when a whole executor tier dies (a broken
  process pool), the unfinished cells fall back process → thread →
  serial.  Cells are deterministic pure functions, so every tier
  produces bit-identical :class:`RunReport` JSON.
* **Checkpoint / resume** (:class:`RunManifest`): an append-only journal
  of completed cells.  ``repro matrix --checkpoint m.jsonl`` records
  progress; after a mid-flight kill, ``repro matrix --resume m.jsonl``
  re-executes only the unfinished cells (finished ones replay from the
  persistent result cache).
* **Deterministic fault injection**: a :class:`~repro.harness.faults.
  FaultInjector` can be plugged into the service so tests (and the CLI's
  ``--inject`` flag) can drive every recovery path on demand.

All recovery actions are visible in ``RunService.stats``
(``retries`` / ``timeouts`` / ``degradations`` / ``store_failures``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..graph import datasets
from ..obs import get_recorder
from ..vcpm.algorithms import algorithm_names
from ..vcpm.partitioned import scatter_shard_task
from .faults import FaultError, FaultInjector
from .journal import advisory_lock, locked_append_line
from .service import (
    REAL_WORLD_KEYS,
    CellExecutionError,
    CellResult,
    RunRequest,
    RunService,
    _await_cell_futures,
    _cell_in_subprocess,
)

__all__ = [
    "CellTimeoutError",
    "MANIFEST_SCHEMA",
    "ResilienceWarning",
    "ResilientRunService",
    "RetryPolicy",
    "RunManifest",
    "TRANSIENT_ERRORS",
    "retry_call",
]

T = TypeVar("T")


class CellTimeoutError(RuntimeError):
    """One cell attempt exceeded the per-cell deadline."""


class ResilienceWarning(RuntimeWarning):
    """A recovery action (degradation, abandoned attempt) was taken."""


#: Failure classes worth retrying: injected faults, dead worker pools,
#: abandoned attempts, and I/O errors (``FlakyStoreError`` is an
#: ``OSError``).  Programming errors (TypeError, AssertionError, ...)
#: are *not* transient and fail the matrix immediately.
TRANSIENT_ERRORS: Tuple[type, ...] = (
    FaultError,
    CellTimeoutError,
    BrokenProcessPool,
    OSError,
)


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How hard to fight for each cell before giving up.

    Attributes:
        max_attempts: total tries per cell (and per cache store).
        backoff_base: first retry delay in seconds; doubles per attempt.
        backoff_max: delay ceiling in seconds.
        jitter: +/- fraction applied to each delay, derived
            deterministically from the cell key and attempt number (no
            global RNG state, so runs stay reproducible).
        timeout: per-attempt wall-clock budget in seconds; ``None``
            disables deadlines.
        transient: exception classes that trigger a retry.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    jitter: float = 0.1
    timeout: Optional[float] = None
    transient: Tuple[type, ...] = TRANSIENT_ERRORS

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive or None")

    def delay(self, attempt: int, token: str = "") -> float:
        """Backoff before retry ``attempt + 1`` (deterministic jitter)."""
        raw = min(self.backoff_max, self.backoff_base * (2 ** (attempt - 1)))
        if self.jitter and raw > 0:
            digest = hashlib.sha256(
                f"{token}:{attempt}".encode("utf-8")
            ).digest()
            fraction = int.from_bytes(digest[:8], "big") / float(2**64)
            raw *= 1.0 + self.jitter * (2.0 * fraction - 1.0)
        return raw


def retry_call(
    fn: Callable[[], T],
    *,
    policy: Optional[RetryPolicy] = None,
    label: str = "",
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` under a retry policy; the sweep driver's entry point.

    Retries only :attr:`RetryPolicy.transient` errors, sleeping the
    policy's jittered backoff between attempts, and re-raises the last
    error once the attempt budget is exhausted.
    """
    policy = policy or RetryPolicy()
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except policy.transient:
            if attempt >= policy.max_attempts:
                raise
            sleep(policy.delay(attempt, label))


# ----------------------------------------------------------------------
# Checkpoint / resume manifest
# ----------------------------------------------------------------------

MANIFEST_SCHEMA = 1


class RunManifest:
    """Append-only journal of completed matrix cells.

    Line 1 is a JSON header naming the planned matrix; every following
    line records one completed cell::

        {"kind": "repro-matrix-manifest", "schema": 1,
         "algorithms": [...], "graph_keys": [...]}
        {"cell": ["BFS", "FR"], "cache_key": "..."}

    Lines are flushed and fsync'd as cells finish, and :meth:`load`
    tolerates a truncated final line, so a manifest written by a killed
    sweep resumes cleanly.  Every append holds an advisory
    ``fcntl.flock`` (see :func:`repro.harness.journal.advisory_lock`),
    so a daemon worker and a concurrent CLI ``--resume`` sharing one
    manifest cannot interleave partial lines.  The journal is advisory: results themselves
    live in the persistent cache, so a manifest entry whose cache file
    has vanished merely costs a re-execution, never a wrong answer.
    """

    def __init__(
        self,
        path: str,
        algorithms: Sequence[str],
        graph_keys: Sequence[str],
        completed: Optional[Dict[Tuple[str, str], Optional[str]]] = None,
    ) -> None:
        self.path = path
        self.algorithms = list(algorithms)
        self.graph_keys = list(graph_keys)
        self.completed: Dict[Tuple[str, str], Optional[str]] = dict(
            completed or {}
        )
        #: Per-cell shard indices recorded via :meth:`mark_shard`.
        self.shard_completed: Dict[Tuple[str, str], set] = {}

    @staticmethod
    def _key(algorithm: str, graph_key: str) -> Tuple[str, str]:
        return (algorithm.upper(), graph_key)

    @classmethod
    def start(
        cls, path: str, algorithms: Sequence[str], graph_keys: Sequence[str]
    ) -> "RunManifest":
        """Create (truncate) a manifest for a fresh sweep."""
        manifest = cls(path, algorithms, graph_keys)
        header = {
            "kind": "repro-matrix-manifest",
            "schema": MANIFEST_SCHEMA,
            "algorithms": manifest.algorithms,
            "graph_keys": manifest.graph_keys,
        }
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w") as handle:
            with advisory_lock(handle):
                handle.write(json.dumps(header, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        return manifest

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        """Parse a manifest, tolerating a torn (killed mid-write) tail."""
        with open(path) as handle:
            lines = handle.read().splitlines()
        if not lines:
            raise ValueError(f"manifest {path} is empty")
        header = json.loads(lines[0])
        if (
            header.get("kind") != "repro-matrix-manifest"
            or header.get("schema") != MANIFEST_SCHEMA
        ):
            raise ValueError(
                f"{path} is not a schema-{MANIFEST_SCHEMA} matrix manifest"
            )
        completed: Dict[Tuple[str, str], Optional[str]] = {}
        shard_completed: Dict[Tuple[str, str], set] = {}
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn tail line from a kill mid-append
            try:
                algorithm, graph_key = entry["cell"]
            except (KeyError, TypeError):
                # Not a cell entry; maybe a per-shard breadcrumb (older
                # readers skip these the same way — the schema is
                # backwards compatible by construction).
                try:
                    algorithm, graph_key = entry["shard_of"]
                    shard = int(entry["shard"])
                except (KeyError, TypeError, ValueError):
                    continue
                shard_completed.setdefault(
                    cls._key(algorithm, graph_key), set()
                ).add(shard)
                continue
            completed[cls._key(algorithm, graph_key)] = entry.get("cache_key")
        manifest = cls(
            path, header["algorithms"], header["graph_keys"], completed
        )
        manifest.shard_completed = shard_completed
        return manifest

    def mark(
        self, algorithm: str, graph_key: str, cache_key: Optional[str] = None
    ) -> None:
        """Record one completed cell (idempotent)."""
        key = self._key(algorithm, graph_key)
        if key in self.completed:
            return
        self.completed[key] = cache_key
        entry = {"cell": [key[0], key[1]], "cache_key": cache_key}
        locked_append_line(self.path, json.dumps(entry, sort_keys=True))

    def mark_shard(
        self, algorithm: str, graph_key: str, shard: int, shards: int
    ) -> None:
        """Record one completed shard of a cell's first iteration.

        Progress breadcrumbs, not resume units: resume stays
        cell-granular (results live in the persistent cache), but the
        journal shows *which shards* of a long paper-scale cell had
        finished when a sweep died.  Idempotent per (cell, shard); old
        readers skip these lines (no ``"cell"`` key).
        """
        key = self._key(algorithm, graph_key)
        done = self.shard_completed.setdefault(key, set())
        if shard in done:
            return
        done.add(shard)
        entry = {
            "shard_of": [key[0], key[1]],
            "shard": int(shard),
            "shards": int(shards),
        }
        locked_append_line(self.path, json.dumps(entry, sort_keys=True))

    def shard_progress(self, algorithm: str, graph_key: str) -> set:
        """Shard indices recorded for one cell (empty when unsharded)."""
        return set(self.shard_completed.get(self._key(algorithm, graph_key), ()))

    def is_completed(self, algorithm: str, graph_key: str) -> bool:
        return self._key(algorithm, graph_key) in self.completed

    def remaining(
        self, pairs: Sequence[Tuple[str, str]]
    ) -> List[Tuple[str, str]]:
        return [
            (a, g) for a, g in pairs if self._key(a, g) not in self.completed
        ]


# ----------------------------------------------------------------------
# Resilient service
# ----------------------------------------------------------------------


class _TierFailure(Exception):
    """A whole executor tier died; carry the unfinished cells onward."""

    def __init__(
        self, remaining: List[Tuple[str, str]], cause: BaseException
    ) -> None:
        super().__init__(f"{len(remaining)} cells unfinished: {cause!r}")
        self.remaining = remaining
        self.cause = cause


def _resilient_cell_worker(
    backends,
    algorithm: str,
    graph_key: str,
    source: int,
    plan,
    max_attempts: int,
    storage: str = "memory",
    shards: int = 1,
    kernel_tier: str = "auto",
) -> Tuple[CellResult, int]:
    """Process-pool entry point: fault hooks + retries inside the worker.

    Returns ``(cell, attempts_used)`` so the parent can account retries
    that happened out-of-process.  A ``kill`` plan calls ``os._exit``,
    which surfaces in the parent as ``BrokenProcessPool`` and is handled
    by tier degradation instead.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            if plan is not None:
                plan.fire(attempt, in_worker=True)
            cell = _cell_in_subprocess(
                backends, algorithm, graph_key, source, storage, shards,
                kernel_tier,
            )
            return cell, attempt
        except FaultError:
            if attempt >= max_attempts:
                raise


#: Degradation order per requested executor.
_TIER_ORDER: Dict[str, Tuple[str, ...]] = {
    "process": ("process", "thread", "serial"),
    "thread": ("thread", "serial"),
    "serial": ("serial",),
}


class ResilientRunService(RunService):
    """A :class:`RunService` that survives crashes, hangs, and bad disks.

    Construction mirrors :class:`RunService`, plus:

    Args:
        policy: the :class:`RetryPolicy` (attempts/backoff/timeout).
        faults: optional :class:`~repro.harness.faults.FaultInjector`
            for deterministic failure drills.
        manifest_path: checkpoint journal location; every completed cell
            is recorded there during :meth:`matrix`.
        resume: when True and ``manifest_path`` exists, continue that
            sweep — its header supplies the matrix shape if the caller
            passes none, and completed cells replay from the persistent
            cache instead of re-executing.
        sleep: injectable backoff sleeper (tests pass a no-op).
    """

    def __init__(
        self,
        *args,
        policy: Optional[RetryPolicy] = None,
        faults: Optional[FaultInjector] = None,
        manifest_path: Optional[str] = None,
        resume: bool = False,
        sleep: Callable[[float], None] = time.sleep,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.policy = policy or RetryPolicy()
        self.faults = faults
        self.manifest_path = manifest_path
        self.resume = resume
        self._sleep = sleep
        self._manifest: Optional[RunManifest] = None

    # ------------------------------------------------------------------
    # Cell-level resilience
    # ------------------------------------------------------------------
    def _run_cell(self, request: RunRequest) -> CellResult:
        token = f"{request.algorithm}/{request.graph_key}"
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._attempt_cell(request, attempt)
            except self.policy.transient as exc:
                if attempt >= self.policy.max_attempts:
                    raise CellExecutionError(
                        request.algorithm,
                        request.graph_key,
                        detail=repr(exc),
                        attempts=attempt,
                    ) from exc
                with self._lock:
                    self.stats.retries += 1
                rec = get_recorder()
                if rec.enabled:
                    rec.counter("resilience.retries").add()
                    rec.event(
                        "resilience.retry",
                        track="service",
                        cell=token,
                        attempt=attempt,
                        error=type(exc).__name__,
                    )
                self._sleep(self.policy.delay(attempt, token))

    def _attempt_cell(self, request: RunRequest, attempt: int) -> CellResult:
        """One attempt, under the per-cell deadline when configured."""
        if self.policy.timeout is None:
            return self._attempt_body(request, attempt)
        pool = ThreadPoolExecutor(max_workers=1)
        try:
            future = pool.submit(self._attempt_body, request, attempt)
            try:
                return future.result(timeout=self.policy.timeout)
            except FuturesTimeoutError:
                future.cancel()
                with self._lock:
                    self.stats.timeouts += 1
                rec = get_recorder()
                if rec.enabled:
                    rec.counter("resilience.timeouts").add()
                    rec.event(
                        "resilience.timeout",
                        track="service",
                        cell=f"{request.algorithm}/{request.graph_key}",
                        attempt=attempt,
                    )
                raise CellTimeoutError(
                    f"cell ({request.algorithm}, {request.graph_key}) "
                    f"attempt {attempt} exceeded {self.policy.timeout}s; "
                    "attempt abandoned"
                ) from None
        finally:
            # Abandon, don't wait: a wedged attempt thread must not block
            # the retry (it is left to finish -- or hang -- in the dark).
            pool.shutdown(wait=False)

    def _attempt_body(self, request: RunRequest, attempt: int) -> CellResult:
        if self.faults is not None:
            self.faults.on_cell_start(
                request.algorithm, request.graph_key, attempt
            )
        return super()._run_cell(request)

    def _shard_runner_for(self, request: RunRequest, graph):
        """Wrap the shard runner to journal per-shard breadcrumbs.

        Active only for parent-side sharded cells with an open manifest:
        the first completion of each shard index is appended to the
        journal, so a killed paper-scale sweep shows how far each cell's
        shard fan-out progressed.
        """
        runner, graph_ref, cleanup = super()._shard_runner_for(request, graph)
        manifest = self._manifest
        if manifest is None or request.shards <= 1:
            return runner, graph_ref, cleanup
        base = runner or (
            lambda tasks: [scatter_shard_task(t, graph) for t in tasks]
        )

        def marking_runner(tasks):
            segments = base(tasks)
            for task in tasks:
                manifest.mark_shard(
                    request.algorithm,
                    request.graph_key,
                    task.shard_index,
                    request.shards,
                )
            return segments

        return marking_runner, graph_ref, cleanup

    # ------------------------------------------------------------------
    # Store-level resilience
    # ------------------------------------------------------------------
    def _write_envelope(self, path: str, envelope: Dict[str, object]) -> None:
        attempt = 0
        while True:
            attempt += 1
            try:
                if self.faults is not None:
                    self.faults.on_store(path)
                super()._write_envelope(path, envelope)
                if self.faults is not None:
                    self.faults.after_store(path)
                return
            except OSError:
                if attempt >= self.policy.max_attempts:
                    raise
                with self._lock:
                    self.stats.retries += 1
                self._sleep(self.policy.delay(attempt, path))

    # ------------------------------------------------------------------
    # Matrix orchestration: tiers + checkpointing
    # ------------------------------------------------------------------
    def matrix(
        self,
        algorithms: Optional[Sequence[str]] = None,
        graph_keys: Optional[Sequence[str]] = None,
        jobs: Optional[int] = None,
        executor: Optional[str] = None,
    ) -> List[CellResult]:
        workers = self.jobs if jobs is None else max(int(jobs), 1)
        executor = self.executor if executor is None else executor
        manifest = self._open_manifest(algorithms, graph_keys)
        if manifest is not None:
            algorithms = list(algorithms) if algorithms else manifest.algorithms
            graph_keys = list(graph_keys) if graph_keys else manifest.graph_keys
        algorithms = list(algorithms or algorithm_names())
        graph_keys = list(graph_keys or REAL_WORLD_KEYS)
        pairs = [(a, g) for a in algorithms for g in graph_keys]
        unique = list(dict.fromkeys(pairs))
        mode = executor if workers > 1 and len(unique) > 1 else "serial"
        remaining = unique
        for tier in _TIER_ORDER[mode]:
            if not remaining:
                break
            try:
                self._run_tier(tier, remaining, workers, manifest)
                remaining = []
            except _TierFailure as failure:
                with self._lock:
                    self.stats.degradations += 1
                remaining = failure.remaining
                rec = get_recorder()
                if rec.enabled:
                    rec.counter("resilience.degradations").add()
                    rec.event(
                        "resilience.degradation",
                        track="service",
                        tier=tier,
                        remaining=len(remaining),
                    )
                warnings.warn(
                    f"executor tier {tier!r} broke ({failure.cause!r}); "
                    f"degrading {len(remaining)} unfinished cells to the "
                    "next tier",
                    ResilienceWarning,
                    stacklevel=2,
                )
        return [self.cell(a, g) for a, g in pairs]

    def _open_manifest(
        self,
        algorithms: Optional[Sequence[str]],
        graph_keys: Optional[Sequence[str]],
    ) -> Optional[RunManifest]:
        if not self.manifest_path:
            return None
        if self._manifest is not None:
            return self._manifest
        if self.resume and os.path.exists(self.manifest_path):
            self._manifest = RunManifest.load(self.manifest_path)
        else:
            self._manifest = RunManifest.start(
                self.manifest_path,
                list(algorithms or algorithm_names()),
                list(graph_keys or REAL_WORLD_KEYS),
            )
        return self._manifest

    def _mark(
        self,
        manifest: Optional[RunManifest],
        algorithm: str,
        graph_key: str,
    ) -> None:
        if manifest is None or manifest.is_completed(algorithm, graph_key):
            return
        manifest.mark(
            algorithm,
            graph_key,
            cache_key=self.cache_key(self.request_for(algorithm, graph_key)),
        )

    def _run_tier(
        self,
        tier: str,
        pairs: List[Tuple[str, str]],
        workers: int,
        manifest: Optional[RunManifest],
    ) -> None:
        if tier == "process":
            self._run_tier_process(pairs, workers, manifest)
        elif tier == "thread":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(self.cell, algorithm, graph_key): (
                        algorithm,
                        graph_key,
                    )
                    for algorithm, graph_key in pairs
                }
                _await_cell_futures(
                    futures,
                    on_done=lambda cell: self._mark(manifest, *cell),
                )
        else:
            for algorithm, graph_key in pairs:
                self.cell(algorithm, graph_key)
                self._mark(manifest, algorithm, graph_key)

    def _run_tier_process(
        self,
        pairs: List[Tuple[str, str]],
        workers: int,
        manifest: Optional[RunManifest],
    ) -> None:
        """Process tier: parent-side caches, worker-side fault plans.

        Raises :class:`_TierFailure` carrying the unfinished cells when
        the pool itself breaks (e.g. a worker died with ``os._exit``),
        so :meth:`matrix` can degrade instead of aborting the sweep.
        """
        pending = []
        for algorithm, graph_key in pairs:
            if datasets.is_dynamic(graph_key):
                # Worker processes cannot see this process's dynamic
                # registrations, so dynamic cells run in-parent (the
                # serial path still applies retries and fault hooks).
                self.cell(algorithm, graph_key)
                self._mark(manifest, algorithm, graph_key)
                continue
            key = self._memo_key(algorithm, graph_key)
            with self._lock:
                if key in self._cells:
                    self._mark(manifest, algorithm, graph_key)
                    continue
            request = self.request_for(algorithm, graph_key)
            path = self._cache_path(request) if self.persistent else None
            if path is not None:
                cached = self._load_cached(path, request)
                if cached is not None:
                    with self._lock:
                        self.stats.hits += 1
                        self._cells.setdefault(key, cached)
                    self._mark(manifest, algorithm, graph_key)
                    continue
            plan = (
                self.faults.plan_for(request.algorithm, graph_key)
                if self.faults is not None
                else None
            )
            pending.append((algorithm, graph_key, key, request, path, plan))
        if not pending:
            return
        pool = ProcessPoolExecutor(max_workers=workers)
        finished = set()
        try:
            futures = [
                (
                    pool.submit(
                        _resilient_cell_worker,
                        self.backends,
                        request.algorithm,
                        request.graph_key,
                        request.source,
                        plan if plan else None,
                        self.policy.max_attempts,
                        request.storage,
                        request.shards,
                        request.kernel_tier,
                    ),
                    algorithm,
                    graph_key,
                    key,
                    request,
                    path,
                )
                for algorithm, graph_key, key, request, path, plan in pending
            ]
            for future, algorithm, graph_key, key, request, path in futures:
                try:
                    cell, attempts = future.result(
                        timeout=self.policy.timeout
                    )
                except FuturesTimeoutError:
                    with self._lock:
                        self.stats.timeouts += 1
                    # Abandon the worker's attempt; finish the cell in
                    # the parent under the full retry machinery.
                    self.cell(algorithm, graph_key)
                except BrokenProcessPool as exc:
                    raise _TierFailure(
                        [
                            (a, g)
                            for _, a, g, k, _, _ in futures
                            if k not in finished
                        ],
                        exc,
                    ) from exc
                except Exception as exc:
                    raise CellExecutionError(
                        algorithm,
                        graph_key,
                        detail=repr(exc),
                        attempts=self.policy.max_attempts,
                    ) from exc
                else:
                    if attempts > 1:
                        with self._lock:
                            self.stats.retries += attempts - 1
                    if path is not None:
                        self._store_cached(path, request, cell)
                    with self._lock:
                        self.stats.misses += 1
                        self._cells.setdefault(key, cell)
                finished.add(key)
                self._mark(manifest, algorithm, graph_key)
        finally:
            # wait=False: a hung or dead worker must not block shutdown.
            pool.shutdown(wait=False)
