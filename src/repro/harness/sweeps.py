"""Design-parameter sweeps (the configuration choices of Section 5.1.3).

The paper fixes ``nSIMT = 8``, ``eThreshold = 128``, ``eListSize = 16``,
``vListSize = 8``, and 1 bitmap bit per 256 vertices, each justified by a
sentence of analysis.  These sweeps regenerate the quantitative trade-offs
behind those choices so the ablation benchmarks can check them:

* :func:`sweep_e_threshold`   -- scheduling operations vs PE balance;
* :func:`sweep_n_simt`        -- lane efficiency vs lane count on real
  frontier degree distributions;
* :func:`sweep_bitmap_block`  -- Apply-work slack vs bitmap size;
* :func:`sweep_bandwidth`     -- end-to-end performance vs HBM bandwidth
  (the "half the memory bandwidth" headline);
* :func:`sweep_ue_queue_depth` -- micro-model backpressure vs FIFO depth.
"""

from __future__ import annotations

import dataclasses
import functools
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.scheduling import balanced_dispatch
from ..core.update_bitmap import ReadyToUpdateBitmap
from ..core.vectorize import vectorize_workloads
from ..graph import datasets
from ..graphdyns.config import DEFAULT_CONFIG
from ..graphdyns.timing import GraphDynSTimingModel
from ..vcpm.algorithms import get_algorithm
from ..vcpm.engine import IterationData, run_vcpm
from .figures import FigureResult
from .resilience import RetryPolicy, retry_call

__all__ = [
    "SWEEPS",
    "run_sweeps",
    "sweep_e_threshold",
    "sweep_n_simt",
    "sweep_bitmap_block",
    "sweep_bandwidth",
]


class _FrontierCollector:
    """Stores (degrees, modified_ids) of every iteration of one run."""

    def __init__(self) -> None:
        self.degree_sets: List[np.ndarray] = []
        self.modified_sets: List[np.ndarray] = []
        self.num_vertices = 0

    def on_iteration(self, data: IterationData) -> None:
        if data.num_edges:
            self.degree_sets.append(data.active_degrees.copy())
        if data.num_modified:
            self.modified_sets.append(data.modified_ids.copy())
        self.num_vertices = data.num_vertices


def _collect(graph_key: str, algorithm: str) -> _FrontierCollector:
    graph = datasets.load(graph_key)
    collector = _FrontierCollector()
    run_vcpm(
        graph, get_algorithm(algorithm), source=0, observers=[collector]
    )
    return collector


def sweep_e_threshold(
    graph_key: str = "LJ",
    algorithm: str = "SSSP",
    thresholds: Sequence[int] = (16, 32, 64, 128, 256, 512),
) -> FigureResult:
    """eThreshold trade-off: fewer scheduling ops vs residual imbalance.

    The paper picks 128 "to reduce the complexity of Dispatcher and
    workload imbalance due to high-degree active vertices": small
    thresholds split everything (many ops, perfect balance); huge
    thresholds never split (few ops, hash-like imbalance).
    """
    collector = _collect(graph_key, algorithm)
    rows: List[List[object]] = []
    for threshold in thresholds:
        total_ops = 0
        worst_imbalance = 1.0
        for degrees in collector.degree_sets:
            outcome = balanced_dispatch(degrees, e_threshold=threshold)
            total_ops += outcome.scheduling_ops
            if degrees.sum() >= 4096:  # balance only meaningful when busy
                worst_imbalance = max(worst_imbalance, outcome.imbalance)
        rows.append([threshold, total_ops, worst_imbalance])
    return FigureResult(
        figure=f"eThreshold sweep ({algorithm} on {graph_key})",
        headers=["eThreshold", "scheduling_ops", "worst_imbalance"],
        rows=rows,
    )


def sweep_n_simt(
    graph_key: str = "LJ",
    algorithm: str = "SSSP",
    lane_counts: Sequence[int] = (2, 4, 8, 16, 32),
    e_list_size: int = 16,
) -> FigureResult:
    """SIMT width trade-off on real frontier degree distributions.

    The paper picks 8 lanes because most active vertices have >5 neighbors
    (Fig. 2): wider vectors idle on short lists even with combining, while
    narrower ones waste peak throughput.
    """
    collector = _collect(graph_key, algorithm)
    rows: List[List[object]] = []
    for lanes in lane_counts:
        slot_sum = 0
        item_sum = 0
        for degrees in collector.degree_sets:
            chunks = np.minimum(degrees, e_list_size)
            stats = vectorize_workloads(chunks, lanes, combine_small=True)
            slot_sum += stats.issue_slots
            item_sum += stats.total_items
        efficiency = item_sum / (slot_sum * lanes) if slot_sum else 1.0
        peak = lanes * DEFAULT_CONFIG.num_pes
        rows.append([lanes, efficiency, peak, efficiency * peak])
    return FigureResult(
        figure=f"nSIMT sweep ({algorithm} on {graph_key})",
        headers=["nSIMT", "lane_efficiency", "peak_lanes", "effective_lanes"],
        rows=rows,
    )


def sweep_bitmap_block(
    graph_key: str = "LJ",
    algorithm: str = "BFS",
    block_sizes: Sequence[int] = (32, 64, 128, 256, 512, 1024),
) -> FigureResult:
    """Bitmap granularity trade-off: selection slack vs bitmap size.

    One bit per 256 vertices is the paper's pick: coarse enough that the
    bitmap stays tiny (256 entries per UE), fine enough that most
    unmodified vertices are still skipped.
    """
    collector = _collect(graph_key, algorithm)
    num_vertices = collector.num_vertices
    rows: List[List[object]] = []
    for block in block_sizes:
        scheduled = 0
        modified = 0
        for ids in collector.modified_sets:
            scheduled += ReadyToUpdateBitmap.scheduled_count(
                ids, num_vertices, block
            )
            modified += ids.size
        slack = scheduled - modified
        bitmap_bits = -(-num_vertices // block)
        reduction = 1.0 - scheduled / (
            len(collector.modified_sets) * num_vertices
        )
        rows.append([block, scheduled, slack, bitmap_bits, 100.0 * reduction])
    return FigureResult(
        figure=f"bitmap block-size sweep ({algorithm} on {graph_key})",
        headers=[
            "block", "scheduled", "slack", "bitmap_bits", "work_reduction_%",
        ],
        rows=rows,
    )


def sweep_bandwidth(
    graph_key: str = "LJ",
    algorithm: str = "PR",
    bandwidths_gbs: Sequence[float] = (128, 256, 512, 1024),
) -> FigureResult:
    """End-to-end GraphDynS performance vs HBM bandwidth.

    The headline claim runs GraphDynS at 512 GB/s against a 900 GB/s GPU;
    this sweep shows where the design saturates.
    """
    graph = datasets.load(graph_key)
    spec = get_algorithm(algorithm)
    models: Dict[float, GraphDynSTimingModel] = {}
    for gbs in bandwidths_gbs:
        hbm = dataclasses.replace(
            DEFAULT_CONFIG.hbm,
            name=f"HBM-{gbs:g}GB/s",
            peak_bytes_per_cycle=float(gbs),
        )
        config = dataclasses.replace(DEFAULT_CONFIG, hbm=hbm)
        models[gbs] = GraphDynSTimingModel(graph, spec, config)
    run_vcpm(
        graph, spec, source=0, observers=list(models.values())
    )
    rows: List[List[object]] = []
    for gbs in bandwidths_gbs:
        report = models[gbs].report()
        rows.append(
            [
                f"{gbs:g}",
                report.gteps,
                100.0 * report.bandwidth_utilization,
            ]
        )
    return FigureResult(
        figure=f"bandwidth sweep ({algorithm} on {graph_key})",
        headers=["GB/s", "GTEPS", "bw_util_%"],
        rows=rows,
    )


#: Named sweep registry consumed by the resilient driver below.
SWEEPS: Dict[str, Callable[..., FigureResult]] = {
    "e_threshold": sweep_e_threshold,
    "n_simt": sweep_n_simt,
    "bitmap_block": sweep_bitmap_block,
    "bandwidth": sweep_bandwidth,
}


def run_sweeps(
    names: Optional[Sequence[str]] = None,
    *,
    policy: Optional[RetryPolicy] = None,
    sleep: Callable[[float], None] = time.sleep,
    **kwargs,
) -> Dict[str, FigureResult]:
    """Run named sweeps under the resilience layer's retry policy.

    Each sweep replays a full functional run, so a transient failure
    (a flaky dataset load, an injected fault in a test) costs one
    retry, not the whole ablation campaign.  ``kwargs`` are forwarded
    to every sweep function (e.g. ``graph_key="FR"``).
    """
    selected = list(names) if names is not None else list(SWEEPS)
    unknown = [name for name in selected if name not in SWEEPS]
    if unknown:
        raise KeyError(
            f"unknown sweeps {unknown}; available: {sorted(SWEEPS)}"
        )
    results: Dict[str, FigureResult] = {}
    for name in selected:
        fn = functools.partial(SWEEPS[name], **kwargs)
        results[name] = retry_call(
            fn, policy=policy, label=f"sweep:{name}", sleep=sleep
        )
    return results
