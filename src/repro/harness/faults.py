"""Deterministic fault injection for the run service.

Graph workloads are dominated by data-dependent irregularity, so a
production evaluation matrix must expect stragglers, dead workers, and
half-written cache entries as the norm rather than the exception.  This
module provides the *controlled* versions of those failures, so the
resilience layer (:mod:`repro.harness.resilience`) can be driven through
every recovery path by an ordinary test:

``FaultSpec``
    One parsed fault directive, e.g. ``crash:2`` ("the 2nd executed cell
    raises on its first attempt"), ``hang:1:0.5`` ("the 1st cell sleeps
    0.5 s before computing"), ``kill:1`` ("the worker process running
    the 1st cell dies with ``os._exit``"), ``flaky-store:1:2`` ("the 1st
    stored entry fails its first two write attempts"), or
    ``corrupt-cache:1`` ("the 1st stored entry is truncated on disk
    after a successful write").

``FaultInjector``
    Stateful dispatcher of those specs.  Cells are numbered 1..N in
    first-execution order and store targets in first-store order, and
    each spec fires exactly once (``crash``/``hang`` fail the first
    ``count`` attempts of their cell, then let it succeed), so a retry
    loop converges deterministically.

``CellFaultPlan``
    The picklable per-cell slice of an injector, handed to
    ``ProcessPoolExecutor`` workers so faults fire *inside* the worker
    even though the injector's counters live in the parent.

The daemon (:mod:`repro.harness.serve`) adds three daemon-level kinds:
``kill-daemon:N`` (the *host* process dies with ``os._exit`` when the
Nth cell starts — a deterministic stand-in for ``kill -9`` mid-matrix),
``flaky-journal:N:C`` (the Nth distinct journal append fails its first
C attempts), and ``queue-overflow:N:C`` (submissions N..N+C-1 are
force-rejected as if the queue were full, driving the backpressure
path without needing a real burst).

Every injected error type is a subclass of :class:`FaultError` (or
:class:`FlakyStoreError`/:class:`FlakyJournalError`, which are
``OSError`` so the store/journal paths treat them exactly like real
disk failures).
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "CellFaultPlan",
    "FaultError",
    "FaultInjector",
    "FaultSpec",
    "FlakyJournalError",
    "FlakyStoreError",
    "InjectedCrashError",
]


class FaultError(RuntimeError):
    """Base class of injected cell-execution faults."""


class InjectedCrashError(FaultError):
    """An injected, transient cell crash (stands in for worker death)."""


class FlakyStoreError(OSError):
    """An injected persistent-cache write failure."""


class FlakyJournalError(OSError):
    """An injected job-journal append failure."""


_KINDS = (
    "crash",
    "hang",
    "kill",
    "kill-daemon",
    "flaky-store",
    "corrupt-cache",
    "flaky-journal",
    "queue-overflow",
)
_CELL_KINDS = ("crash", "hang", "kill", "kill-daemon")
_STORE_KINDS = ("flaky-store", "corrupt-cache")


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One parsed fault directive.

    Attributes:
        kind: one of ``crash``, ``hang``, ``kill`` (cell faults, indexed
            by execution order) or ``flaky-store``, ``corrupt-cache``
            (store faults, indexed by store order).
        target: 1-based index of the targeted cell / store.
        count: how many leading attempts fail (``crash``/``hang``/
            ``flaky-store``); a count larger than the retry budget makes
            the fault effectively permanent, which is how tests simulate
            a mid-sweep kill.
        seconds: sleep duration of a ``hang``.
    """

    kind: str
    target: int = 1
    count: int = 1
    seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.target < 1:
            raise ValueError("fault target index is 1-based")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``kind[:target[:count_or_seconds]]`` CLI syntax.

        ``crash:2:3`` — cell 2 crashes on attempts 1-3;
        ``hang:1:0.5`` — cell 1 sleeps 0.5 s on its first attempt;
        ``flaky-store:1:2`` — store 1 fails its first two writes;
        ``kill:3`` — the worker process executing cell 3 dies.
        """
        parts = text.strip().split(":")
        kind = parts[0]
        if kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of {_KINDS}"
            )
        target = int(parts[1]) if len(parts) > 1 and parts[1] else 1
        count, seconds = 1, 0.25
        if len(parts) > 2 and parts[2]:
            if kind == "hang":
                seconds = float(parts[2])
            else:
                count = int(parts[2])
        if len(parts) > 3:
            raise ValueError(f"too many ':' fields in fault spec {text!r}")
        return cls(kind=kind, target=target, count=count, seconds=seconds)


@dataclasses.dataclass(frozen=True)
class CellFaultPlan:
    """The picklable fault schedule of one cell.

    ``fire`` is called at the start of every attempt (in-process or
    inside a pool worker); attempts are 1-based.  ``kill`` only fires
    with ``in_worker=True`` — dying takes a process of one's own, and a
    cell degraded back into the parent must not take the parent down.
    """

    crash_attempts: int = 0
    hang_attempts: int = 0
    hang_seconds: float = 0.0
    kill: bool = False
    #: ``kill-daemon``: the *host* process dies, worker or not — the
    #: deterministic stand-in for ``kill -9`` of the serving daemon
    #: mid-matrix (crash-resume tests restart it and assert identity).
    kill_host: bool = False

    def __bool__(self) -> bool:
        return bool(
            self.crash_attempts
            or self.hang_attempts
            or self.kill
            or self.kill_host
        )

    def fire(self, attempt: int, in_worker: bool = False) -> None:
        if self.kill_host and attempt == 1:
            os._exit(86)  # the whole process dies, exactly like kill -9
        if self.kill and in_worker and attempt == 1:
            os._exit(86)  # hard worker death: parent sees BrokenProcessPool
        if attempt <= self.hang_attempts:
            time.sleep(self.hang_seconds)
        if attempt <= self.crash_attempts:
            raise InjectedCrashError(
                f"injected crash (attempt {attempt}/{self.crash_attempts})"
            )


class FaultInjector:
    """Deterministic dispatcher of :class:`FaultSpec` directives.

    Thread-safe; cell indices are assigned in first-execution order and
    store indices in first-store order, so a given (matrix, spec list)
    always produces the same fault schedule under serial execution, and
    under parallel execution always injects the same *set* of faults
    (only the identity of "the Nth started cell" can vary).
    """

    def __init__(
        self, specs: Sequence[Union[FaultSpec, str]] = ()
    ) -> None:
        self.specs: List[FaultSpec] = [
            spec if isinstance(spec, FaultSpec) else FaultSpec.parse(spec)
            for spec in specs
        ]
        self.fired = 0  # injected events (crash/hang/kill/store faults)
        self._lock = threading.Lock()
        self._cell_index: Dict[Tuple[str, str], int] = {}
        self._plans: Dict[Tuple[str, str], CellFaultPlan] = {}
        self._store_index: Dict[str, int] = {}
        self._store_attempts: Dict[str, int] = {}
        self._journal_index: Dict[str, int] = {}
        self._admit_count = 0
        self._consumed: set = set()

    # ------------------------------------------------------------------
    # Cell faults
    # ------------------------------------------------------------------
    def plan_for(self, algorithm: str, graph_key: str) -> CellFaultPlan:
        """The (memoized) fault plan of one cell; consumes its specs."""
        key = (algorithm.upper(), graph_key)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                return plan
            index = self._cell_index.setdefault(
                key, len(self._cell_index) + 1
            )
            crash = hang = 0
            seconds = 0.0
            kill = kill_host = False
            for i, spec in enumerate(self.specs):
                if spec.kind not in _CELL_KINDS or spec.target != index:
                    continue
                if i in self._consumed:
                    continue
                self._consumed.add(i)
                if spec.kind == "crash":
                    crash = max(crash, spec.count)
                elif spec.kind == "hang":
                    hang = max(hang, spec.count)
                    seconds = max(seconds, spec.seconds)
                elif spec.kind == "kill":
                    kill = True
                elif spec.kind == "kill-daemon":
                    kill_host = True
            plan = CellFaultPlan(
                crash_attempts=crash,
                hang_attempts=hang,
                hang_seconds=seconds,
                kill=kill,
                kill_host=kill_host,
            )
            self._plans[key] = plan
            if plan:
                self.fired += 1
            return plan

    def on_cell_start(
        self, algorithm: str, graph_key: str, attempt: int
    ) -> None:
        """In-process hook: fire this cell's plan for one attempt."""
        self.plan_for(algorithm, graph_key).fire(attempt)

    # ------------------------------------------------------------------
    # Store faults
    # ------------------------------------------------------------------
    def _store_state(self, path: str) -> Tuple[int, int]:
        with self._lock:
            index = self._store_index.setdefault(
                path, len(self._store_index) + 1
            )
            attempt = self._store_attempts.get(path, 0) + 1
            self._store_attempts[path] = attempt
            return index, attempt

    def on_store(self, path: str) -> None:
        """Before-write hook; raises :class:`FlakyStoreError` to fail it."""
        index, attempt = self._store_state(path)
        for spec in self.specs:
            if (
                spec.kind == "flaky-store"
                and spec.target == index
                and attempt <= spec.count
            ):
                with self._lock:
                    self.fired += 1
                raise FlakyStoreError(
                    f"injected store failure (attempt {attempt}/{spec.count})"
                )

    def after_store(self, path: str) -> None:
        """After-write hook; truncates the entry for ``corrupt-cache``."""
        with self._lock:
            index = self._store_index.get(path)
        for i, spec in enumerate(self.specs):
            if spec.kind != "corrupt-cache" or spec.target != index:
                continue
            with self._lock:
                if i in self._consumed:
                    continue
                self._consumed.add(i)
                self.fired += 1
            with open(path, "r+") as handle:
                text = handle.read()
                handle.seek(0)
                handle.truncate()
                handle.write(text[: max(1, len(text) // 2)])

    # ------------------------------------------------------------------
    # Daemon faults
    # ------------------------------------------------------------------
    def on_journal(self, token: str, attempt: int) -> None:
        """Journal-append hook: ``flaky-journal:N:C`` fails the Nth
        distinct append (keyed by its event token) for C attempts."""
        with self._lock:
            index = self._journal_index.setdefault(
                token, len(self._journal_index) + 1
            )
        for spec in self.specs:
            if (
                spec.kind == "flaky-journal"
                and spec.target == index
                and attempt <= spec.count
            ):
                with self._lock:
                    self.fired += 1
                raise FlakyJournalError(
                    f"injected journal failure for {token!r} "
                    f"(attempt {attempt}/{spec.count})"
                )

    def on_admit(self) -> bool:
        """Submission hook: True when ``queue-overflow`` forces a 503.

        Submissions are numbered 1..N in arrival order; a spec
        ``queue-overflow:N:C`` rejects submissions N..N+C-1.
        """
        with self._lock:
            self._admit_count += 1
            index = self._admit_count
        for spec in self.specs:
            if (
                spec.kind == "queue-overflow"
                and spec.target <= index < spec.target + spec.count
            ):
                with self._lock:
                    self.fired += 1
                return True
        return False

    # ------------------------------------------------------------------
    @property
    def store_faults(self) -> bool:
        return any(spec.kind in _STORE_KINDS for spec in self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector({self.specs!r}, fired={self.fired})"


def build_injector(
    specs: Sequence[str],
) -> Optional[FaultInjector]:
    """An injector for the CLI's repeated ``--inject`` flags (or None)."""
    if not specs:
        return None
    return FaultInjector([FaultSpec.parse(s) for s in specs])
