"""``repro serve``: a durable, admission-controlled simulation daemon.

This module turns the library into a long-running service: an HTTP/JSON
API (stdlib :mod:`http.server`, no new dependencies) wrapping one warm
:class:`~repro.harness.resilience.ResilientRunService`, engineered
around the same thesis as the paper — irregular, bursty load needs an
*explicit* scheduling and load-management layer, not best-effort
execution.  Four properties, each carried by a dedicated mechanism:

**Durability** (:class:`~repro.harness.journal.JobJournal`)
    Every job transition is written ahead to an append-only, fsync'd,
    torn-tail-tolerant JSONL journal.  After ``kill -9`` mid-matrix the
    daemon restarts, folds the journal, re-enqueues every job without a
    terminal event, and re-executes it — finished cells replay from the
    content-addressed persistent cache, so the resumed result is
    byte-identical to an uninterrupted run.

**Deduplication** (request coalescing)
    A job's identity is the sorted tuple of its cells' content-addressed
    ``cache_key``s.  An identical submission arriving while a matching
    job is in flight *attaches* to it instead of executing again: N
    duplicate submissions run the underlying cells exactly once and all
    N clients observe the same result (``coalesced`` counter = N-1).

**Backpressure** (:mod:`~repro.harness.admission`)
    A bounded priority queue with a deterministic shed order, per-client
    token buckets (HTTP 429 + ``Retry-After``), queue-full rejections
    (HTTP 503 + ``Retry-After``), and load-aware executor degradation
    (process → thread → serial as occupancy climbs) so a burst of
    thousands of submissions can never fork unbounded pools.

**Lifecycle**
    ``/healthz`` (liveness) and ``/readyz`` (readiness; 503 while
    draining), graceful drain on SIGTERM (stop admitting, finish running
    jobs up to a budget, journal shutdown — queued jobs stay journaled
    and resume on restart), a watchdog that abandons jobs exceeding
    their deadline (the resilience layer's abandon-don't-block
    semantics), and stale-spill garbage collection at startup.

HTTP surface (all JSON)::

    POST   /v1/jobs            submit {"algorithms": [...], "graphs": [...]}
    GET    /v1/jobs            list jobs
    GET    /v1/jobs/<id>       one job's status
    GET    /v1/jobs/<id>/result   canonical RunReport JSON (409 until done)
    DELETE /v1/jobs/<id>       cancel a queued/running job
    GET    /v1/stats           admission/coalesce/queue counters
    GET    /healthz            liveness
    GET    /readyz             readiness (503 while draining)
    POST   /v1/drain           stop admitting, keep serving status
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import re
import signal
import threading
import time
import urllib.error
import urllib.request
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..graph import datasets
from ..graph.storage import gc_stale_spills
from ..kernels.tiers import compiled_provider_name, resolve_tier, warm_compile
from ..obs import get_recorder
from ..vcpm.algorithms import get_algorithm
from .admission import AdmissionController, AdmissionDecision, executor_for_load
from .faults import FaultInjector
from .journal import JobJournal, JournalError
from .resilience import ResilientRunService, RetryPolicy
from .service import canonical_reports_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .specs import ExperimentSpec

__all__ = [
    "DaemonConfig",
    "DaemonStats",
    "Job",
    "JobSpec",
    "JobValidationError",
    "SimulationDaemon",
    "http_json",
    "submit_job",
    "submit_plan",
    "wait_for_job",
]

#: Job states.  ``queued``/``running`` are live; ``coalesced`` mirrors a
#: primary job; the rest are terminal.
_TERMINAL_STATES = ("done", "failed", "cancelled", "shed")


class JobValidationError(ValueError):
    """A submitted job spec names unknown algorithms/datasets (HTTP 400)."""


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """What one job runs: a sub-matrix of (algorithm, graph) cells.

    The source vertex and backend configs are daemon-level settings (the
    warm service's), not per-job, so a job's identity is purely its
    cells — which is what makes coalescing by cache key sound.
    """

    algorithms: Tuple[str, ...]
    graphs: Tuple[str, ...]

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobSpec":
        try:
            algorithms = tuple(str(a) for a in data["algorithms"])
            graphs = tuple(str(g) for g in data["graphs"])
        except (KeyError, TypeError) as exc:
            raise JobValidationError(
                "job spec requires 'algorithms' and 'graphs' lists"
            ) from exc
        if not algorithms or not graphs:
            raise JobValidationError(
                "'algorithms' and 'graphs' must be non-empty"
            )
        spec = cls(algorithms=algorithms, graphs=graphs)
        spec.validate()
        return spec

    def validate(self) -> None:
        for algorithm in self.algorithms:
            try:
                get_algorithm(algorithm)
            except KeyError as exc:
                raise JobValidationError(str(exc)) from exc
        for graph in self.graphs:
            try:
                datasets.resolve_key(graph)
            except KeyError as exc:
                raise JobValidationError(str(exc)) from exc

    def to_dict(self) -> Dict[str, object]:
        return {
            "algorithms": list(self.algorithms),
            "graphs": list(self.graphs),
        }

    def cells(self) -> List[Tuple[str, str]]:
        return [(a, g) for a in self.algorithms for g in self.graphs]


@dataclasses.dataclass
class Job:
    """One submission's full lifecycle record."""

    id: str
    seq: int
    spec: JobSpec
    priority: int = 0
    client: str = "anonymous"
    job_key: str = ""
    state: str = "queued"
    coalesced_with: Optional[str] = None
    attached: List[str] = dataclasses.field(default_factory=list)
    error: Optional[str] = None
    result_json: Optional[str] = None
    result_digest: Optional[str] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    executor_used: Optional[str] = None
    resumed: bool = False
    #: True once this job's max_running slot has been given back.
    slot_released: bool = True

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL_STATES


@dataclasses.dataclass
class DaemonStats:
    """Monotonic daemon counters, mirrored into ``repro.obs``."""

    admitted: int = 0
    coalesced: int = 0
    rejected_rate_limited: int = 0
    rejected_queue_full: int = 0
    rejected_draining: int = 0
    rejected_invalid: int = 0
    shed: int = 0
    planned: int = 0
    completed: int = 0
    failed: int = 0
    timeouts: int = 0
    cancelled: int = 0
    resumed: int = 0
    degraded_executor: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class DaemonConfig:
    """Everything tunable about one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 8177
    #: WAL journal path; ``None`` disables durability (tests only).
    journal_path: Optional[str] = "repro-jobs.jsonl"
    cache_dir: Optional[str] = None
    use_cache: bool = True
    #: Bounded queue capacity (queued jobs, excluding running).
    capacity: int = 64
    #: Per-client token-bucket rate (jobs/second); ``None`` = unlimited.
    rate: Optional[float] = None
    burst: float = 10.0
    retry_after_full: float = 1.0
    #: Concurrently *running* jobs (each may fan cells out internally).
    max_running: int = 1
    #: Wall-clock deadline per job; the watchdog abandons over-budget
    #: jobs.  ``None`` disables the watchdog's cancellations.
    job_deadline: Optional[float] = None
    #: Graceful-drain budget on SIGTERM before exiting anyway.
    drain_timeout: float = 5.0
    #: Cell-level execution knobs, passed through to the service.
    executor: str = "thread"
    jobs: int = 1
    storage: str = "memory"
    shards: int = 1
    #: Kernel tier request for cell execution (``"auto"`` picks the best
    #: available).  When the resolved tier is ``"compiled"`` the daemon
    #: warm-compiles the native kernels at boot, so the first admitted
    #: job never pays JIT/build latency.
    kernel_tier: str = "auto"
    retries: int = 3
    cell_timeout: Optional[float] = None
    #: Retain at most this many finished results in memory.
    max_results: int = 256
    #: Deterministic fault directives (see :mod:`repro.harness.faults`).
    inject: Tuple[str, ...] = ()
    #: Scheduler/watchdog poll interval.
    poll_interval: float = 0.05
    #: Path to write ``{"pid", "port", "url"}`` once ready (port 0 ⇒
    #: ephemeral; the announce file is how callers learn the real port).
    announce: Optional[str] = None


class SimulationDaemon:
    """The long-running service cell wrapping one warm run service.

    The service instance (and with it the process-wide dataset memo and
    any mmap spill state) is shared across every job, so repeated jobs
    against the same graphs never reload or regenerate them.

    Args:
        config: see :class:`DaemonConfig`.
        service: injectable pre-built service (tests substitute stubs);
            defaults to a :class:`ResilientRunService` built from
            ``config``.
    """

    def __init__(
        self,
        config: Optional[DaemonConfig] = None,
        service: Optional[ResilientRunService] = None,
    ) -> None:
        self.config = config or DaemonConfig()
        self.faults: Optional[FaultInjector] = (
            FaultInjector(list(self.config.inject))
            if self.config.inject
            else None
        )
        #: Stale spill directories reclaimed at startup (dead owners).
        self.spills_collected: List[str] = gc_stale_spills()
        # The service constructor only knows pool kinds; "serial" as the
        # daemon's base tier means a thread service run with jobs=1.
        service_executor = (
            self.config.executor
            if self.config.executor in ("thread", "process")
            else "thread"
        )
        self.service = service or ResilientRunService(
            cache_dir=self.config.cache_dir,
            use_cache=self.config.use_cache,
            jobs=self.config.jobs if self.config.executor != "serial" else 1,
            executor=service_executor,
            storage=self.config.storage,
            shards=self.config.shards,
            kernel_tier=self.config.kernel_tier,
            policy=RetryPolicy(
                max_attempts=max(self.config.retries, 1),
                timeout=self.config.cell_timeout,
            ),
            faults=self.faults,
        )
        # Warm-compile before accepting work: resolve the configured tier
        # once, and when it lands on "compiled" force provider selection +
        # native build/JIT now so the first admitted job never pays it.
        self.kernel_tier: str = resolve_tier(self.config.kernel_tier)
        self.warm_compile_s: Optional[float] = (
            warm_compile() if self.kernel_tier == "compiled" else None
        )
        self.controller = AdmissionController(
            capacity=self.config.capacity,
            rate=self.config.rate,
            burst=self.config.burst,
            retry_after_full=self.config.retry_after_full,
        )
        self.journal: Optional[JobJournal] = (
            JobJournal(self.config.journal_path, faults=self.faults)
            if self.config.journal_path
            else None
        )
        self.stats = DaemonStats()
        self.started_at = time.time()
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, str] = {}  # job_key -> primary job id
        self._running: Dict[str, Job] = {}
        self._results_order: List[str] = []
        self._seq = 0
        self._lock = threading.RLock()
        self._accepting = True
        self._draining = False
        self._stop = threading.Event()
        self._stopped = threading.Event()
        self._slots = threading.Semaphore(max(1, self.config.max_running))
        self._threads: List[threading.Thread] = []
        self._server: Optional[ThreadingHTTPServer] = None
        if self.journal is not None:
            self._recover()

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def job_key(self, spec: JobSpec) -> str:
        """Content address of a job: its cells' sorted cache keys.

        Built on the run service's existing content-addressed cell keys
        (which already fold in configs, dataset fingerprints, schema and
        package versions), so two submissions coalesce exactly when the
        cached result of one would satisfy the other.
        """
        keys = sorted(
            self.service.cache_key(self.service.request_for(algorithm, graph))
            for algorithm, graph in spec.cells()
        )
        digest = hashlib.sha256("|".join(keys).encode("utf-8")).hexdigest()
        return digest[:16]

    def _new_job(
        self,
        spec: JobSpec,
        priority: int,
        client: str,
        job_key: str,
        coalesced_with: Optional[str] = None,
    ) -> Job:
        self._seq += 1
        job = Job(
            id=f"j{self._seq:06d}-{job_key[:8]}",
            seq=self._seq,
            spec=spec,
            priority=priority,
            client=client,
            job_key=job_key,
            coalesced_with=coalesced_with,
            submitted_at=time.time(),
        )
        self._jobs[job.id] = job
        return job

    # ------------------------------------------------------------------
    # Submission (admission control + coalescing + WAL)
    # ------------------------------------------------------------------
    def submit(
        self,
        spec_data: Dict[str, object],
        priority: int = 0,
        client: str = "anonymous",
    ) -> Tuple[Optional[Job], AdmissionDecision]:
        """Admit one submission; the HTTP POST handler in library form.

        Returns ``(job, decision)``; ``job`` is ``None`` iff the
        submission was rejected (rate limit, queue full, draining, or
        invalid spec — the decision's status is the HTTP status).
        """
        rec = get_recorder()
        try:
            spec = JobSpec.from_dict(spec_data)
        except JobValidationError as exc:
            with self._lock:
                self.stats.rejected_invalid += 1
            return None, AdmissionDecision(
                accepted=False, status=400, reason=str(exc)
            )
        if not self._accepting:
            with self._lock:
                self.stats.rejected_draining += 1
            return None, AdmissionDecision(
                accepted=False,
                status=503,
                reason="daemon is draining",
                retry_after=self.config.drain_timeout,
            )
        limited = self.controller.check_rate(client)
        if limited is not None:
            with self._lock:
                self.stats.rejected_rate_limited += 1
            rec.counter("serve.rejected_rate_limited").add()
            return None, limited
        if self.faults is not None and self.faults.on_admit():
            with self._lock:
                self.stats.rejected_queue_full += 1
            return None, AdmissionDecision(
                accepted=False,
                status=503,
                reason="queue full (injected overflow)",
                retry_after=self.config.retry_after_full,
            )
        job_key = self.job_key(spec)
        with self._lock:
            primary_id = self._inflight.get(job_key)
            if primary_id is not None:
                # Identical work already in flight: attach, don't queue.
                primary = self._jobs[primary_id]
                job = self._new_job(
                    spec, priority, client, job_key,
                    coalesced_with=primary_id,
                )
                job.state = "coalesced"
                primary.attached.append(job.id)
                self.stats.coalesced += 1
                rec.counter("serve.coalesced").add()
                self._journal_submit(job)
                return job, AdmissionDecision(
                    accepted=True, status=202, reason="coalesced"
                )
            job = self._new_job(spec, priority, client, job_key)
            decision = self.controller.offer(job, priority, job.seq)
            if not decision.accepted:
                del self._jobs[job.id]
                self._seq -= 1
                self.stats.rejected_queue_full += 1
                rec.counter("serve.rejected_queue_full").add()
                return None, decision
            for shed_id in decision.shed:
                self._finalize_locked(
                    self._jobs[shed_id], "shed",
                    error="shed by a higher-priority submission",
                )
            self._inflight[job_key] = job.id
            self.stats.admitted += 1
            rec.counter("serve.admitted").add()
            rec.gauge("serve.queue_depth").set(self.controller.depth())
            try:
                self._journal_submit(job)
            except JournalError as exc:
                # No durability, no acknowledgement: withdraw the job.
                self.controller.remove(job.id)
                self._inflight.pop(job_key, None)
                job.state = "failed"
                job.error = repr(exc)
                return None, AdmissionDecision(
                    accepted=False,
                    status=503,
                    reason=f"journal unavailable: {exc}",
                    retry_after=self.config.retry_after_full,
                )
        # Return the controller's decision so callers observe shed ids.
        return job, decision

    def inflight_cell_keys(self) -> FrozenSet[str]:
        """Content-addressed keys of every cell some live job covers.

        The planner treats these cells as *inflight*: submitting them
        again would coalesce onto the running job (same ``job_key``
        construction), so a plan neither schedules them nor counts
        their cost as pending.  Coalesced duplicates contribute the
        same keys as their primary, so including them is harmless.
        """
        with self._lock:
            specs = [
                job.spec
                for job in self._jobs.values()
                if self.effective_state(job) not in _TERMINAL_STATES
            ]
        keys = set()
        for spec in specs:
            for algorithm, graph in spec.cells():
                keys.add(
                    self.service.cache_key(
                        self.service.request_for(algorithm, graph)
                    )
                )
        return frozenset(keys)

    # ------------------------------------------------------------------
    # Declarative plans (POST /v1/plans in library form)
    # ------------------------------------------------------------------
    def _spec_rejection(self, spec: "ExperimentSpec") -> Optional[str]:
        """Why a spec cannot run on this daemon's warm service, or None.

        The job queue executes on one shared service, so every axis the
        queue cannot express per-job must match the daemon's settings —
        a mismatched plan would return results for a *different*
        configuration than the spec asked for.
        """
        if spec.backends:
            return (
                "daemon plans run on the daemon's full backend set; "
                "drop 'backends' or run locally via 'repro run-spec'"
            )
        if spec.overrides:
            return (
                "config overrides are not servable by the shared "
                "daemon service; run locally via 'repro run-spec'"
            )
        if spec.source != self.service.default_source:
            return (
                f"spec source {spec.source} != daemon source "
                f"{self.service.default_source}"
            )
        if spec.storage != self.service.storage:
            return (
                f"spec storage {spec.storage!r} != daemon storage "
                f"{self.service.storage!r}"
            )
        if spec.shards != self.service.shards:
            return (
                f"spec shards {spec.shards} != daemon shards "
                f"{self.service.shards}"
            )
        if spec.kernel_tier not in ("auto", self.service.kernel_tier):
            return (
                f"spec kernel tier {spec.kernel_tier!r} != daemon tier "
                f"{self.service.kernel_tier!r}"
            )
        return None

    def plan_submission(
        self,
        data: Dict[str, object],
        priority: Optional[int] = None,
        client: str = "anonymous",
        dry_run: bool = False,
    ) -> Tuple[int, Dict[str, object]]:
        """Plan a spec against this daemon and fan pending cells out.

        Accepts ``{"spec": {...}}`` (parsed mapping) or
        ``{"yaml": "..."}`` (spec text).  Returns ``(status, payload)``
        where the payload always carries the classified plan; unless
        ``dry_run``, each pending ``(graph)`` group is submitted as one
        job through the normal admission path (rate limits, coalescing,
        shedding, and journaling all apply).
        """
        from .planner import build_plan, plan_to_dict, spec_digest
        from .specs import SpecError, parse_spec, spec_from_dict

        try:
            if "yaml" in data:
                if not isinstance(data["yaml"], str):
                    raise SpecError("'yaml' must be spec text")
                spec = parse_spec(data["yaml"], source="<request>")
            elif "spec" in data:
                spec = spec_from_dict(data["spec"], source="<request>")
            else:
                raise SpecError(
                    "plan requests need a 'spec' mapping or 'yaml' text"
                )
        except SpecError as exc:
            with self._lock:
                self.stats.rejected_invalid += 1
            return 400, {
                "error": str(exc),
                "field": exc.field,
                "line": exc.line,
            }
        rejection = self._spec_rejection(spec)
        if rejection is not None:
            with self._lock:
                self.stats.rejected_invalid += 1
            return 400, {"error": rejection, "field": None, "line": None}

        override = spec.effective_overrides()[0].name
        plan = build_plan(
            spec, {override: self.service}, self.inflight_cell_keys()
        )
        payload: Dict[str, object] = {
            "plan": plan_to_dict(plan),
            "dry_run": dry_run,
            "jobs": [],
            "rejected": [],
        }
        if dry_run:
            return 200, payload

        effective_priority = (
            spec.priority if priority is None else int(priority)
        )
        groups: "OrderedDict[str, List[str]]" = OrderedDict()
        for cell in plan.schedule:
            groups.setdefault(cell.graph, []).append(cell.algorithm)
        jobs: List[Dict[str, object]] = []
        rejected: List[Dict[str, object]] = []
        for graph, algorithms in groups.items():
            job, decision = self.submit(
                {"algorithms": algorithms, "graphs": [graph]},
                priority=effective_priority,
                client=client,
            )
            if job is None:
                rejected.append(
                    {
                        "graph": graph,
                        "algorithms": algorithms,
                        "status": decision.status,
                        "reason": decision.reason,
                    }
                )
            else:
                jobs.append(self.job_dict(job))
        with self._lock:
            self.stats.planned += 1
        get_recorder().counter("serve.planned").add()
        if self.journal is not None:
            with contextlib.suppress(JournalError):
                self.journal.plan(
                    spec_name=spec.name,
                    spec_digest=spec_digest(spec),
                    cells=len(plan.cells),
                    cached=len(plan.cached),
                    pending=len(plan.pending),
                    job_ids=[str(j["id"]) for j in jobs],
                    client=client,
                )
        payload["jobs"] = jobs
        payload["rejected"] = rejected
        status = 202 if jobs or not rejected else rejected[0]["status"]
        return status, payload

    def _journal_submit(self, job: Job) -> None:
        if self.journal is None:
            return
        self.journal.submit(
            job.id,
            job.seq,
            job.spec.to_dict(),
            job.priority,
            job.client,
            job.job_key,
            coalesced_with=job.coalesced_with,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _scheduler_loop(self) -> None:
        while not self._stop.is_set():
            if self._draining:
                self._stop.wait(self.config.poll_interval)
                continue
            if not self._slots.acquire(timeout=self.config.poll_interval):
                continue
            job = self.controller.pop(timeout=self.config.poll_interval)
            if job is None or job.terminal:
                self._slots.release()
                continue
            job.slot_released = False
            worker = threading.Thread(
                target=self._execute_job, args=(job,), daemon=True,
                name=f"repro-serve-{job.id}",
            )
            worker.start()

    def _execute_job(self, job: Job) -> None:
        rec = get_recorder()
        with self._lock:
            if job.terminal:  # cancelled between pop and start
                self._release_slot(job)
                return
            job.state = "running"
            job.started_at = time.time()
            self._running[job.id] = job
            depth = self.controller.depth()
            executor = executor_for_load(
                self.config.executor,
                depth,
                self.config.capacity,
                running=len(self._running),  # includes this job
            )
            job.executor_used = executor
            if executor != self.config.executor:
                self.stats.degraded_executor += 1
                rec.counter("serve.degraded_executor").add()
        try:
            if self.journal is not None:
                self.journal.start(job.id)
            with rec.span(
                "serve.job",
                track="serve",
                job=job.id,
                client=job.client,
                executor=executor,
            ):
                cells = self.service.matrix(
                    list(job.spec.algorithms),
                    list(job.spec.graphs),
                    executor=executor,
                )
            payload = canonical_reports_json(cells)
        except BaseException as exc:  # noqa: BLE001 - job isolation
            self._finalize(job, "failed", error=repr(exc))
        else:
            self._finalize(job, "done", result=payload)

    def _release_slot(self, job: Job) -> None:
        if not job.slot_released:
            job.slot_released = True
            self._slots.release()

    def _finalize(
        self,
        job: Job,
        state: str,
        result: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        with self._lock:
            if job.terminal:
                # A watchdog/cancel beat us to it; this thread's work is
                # discarded (abandon, don't block).
                self._release_slot(job)
                return
            self._finalize_locked(job, state, result=result, error=error)
        self._journal_finalize(job, state, error)

    def _finalize_locked(
        self,
        job: Job,
        state: str,
        result: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        rec = get_recorder()
        job.state = state
        job.error = error
        job.finished_at = time.time()
        if result is not None:
            job.result_json = result
            job.result_digest = hashlib.sha256(
                result.encode("utf-8")
            ).hexdigest()[:16]
            self._results_order.append(job.id)
            while len(self._results_order) > self.config.max_results:
                evicted = self._jobs.get(self._results_order.pop(0))
                if evicted is not None:
                    evicted.result_json = None
        self._running.pop(job.id, None)
        if self._inflight.get(job.job_key) == job.id:
            del self._inflight[job.job_key]
        # Attached jobs mirror the primary's fate; their result is read
        # through ``coalesced_with``, never duplicated.
        for attached_id in job.attached:
            attached = self._jobs.get(attached_id)
            if attached is not None and not attached.terminal:
                attached.state = state
                attached.error = error
                attached.finished_at = job.finished_at
        self._release_slot(job)
        if state == "done":
            self.stats.completed += 1
            rec.counter("serve.completed").add()
        elif state == "failed":
            self.stats.failed += 1
            rec.counter("serve.failed").add()
        elif state == "shed":
            self.stats.shed += 1
            rec.counter("serve.shed").add()
        elif state == "cancelled":
            self.stats.cancelled += 1
        rec.gauge("serve.queue_depth").set(self.controller.depth())
        rec.event(
            "serve.job_finalized", track="serve", job=job.id, state=state
        )

    def _journal_finalize(
        self, job: Job, state: str, error: Optional[str]
    ) -> None:
        if self.journal is None:
            return
        try:
            if state == "done":
                self.journal.done(job.id, result_digest=job.result_digest)
            elif state == "failed":
                self.journal.fail(job.id, error or "")
            else:
                self.journal.cancel(
                    job.id, reason="shed" if state == "shed" else "cancelled"
                )
        except JournalError:
            # A lost terminal event only costs one idempotent re-run
            # after a restart (cells replay from the persistent cache);
            # never fail a finished job over it.
            pass

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        while not self._stop.is_set():
            self._stop.wait(self.config.poll_interval)
            deadline = self.config.job_deadline
            if deadline is None:
                continue
            now = time.time()
            with self._lock:
                victims = [
                    job
                    for job in self._running.values()
                    if job.started_at is not None
                    and now - job.started_at > deadline
                ]
            for job in victims:
                with self._lock:
                    if job.terminal:
                        continue
                    self.stats.timeouts += 1
                    self._finalize_locked(
                        job,
                        "failed",
                        error=(
                            f"deadline {deadline}s exceeded; "
                            "job abandoned by watchdog"
                        ),
                    )
                self._journal_finalize(job, "failed", job.error)
                get_recorder().counter("serve.watchdog_cancels").add()

    # ------------------------------------------------------------------
    # Crash-safe resume
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Fold the WAL and re-enqueue every unfinished job."""
        assert self.journal is not None
        records, max_seq = JobJournal.replay(self.journal.path)
        self._seq = max_seq
        attached_later: List[Tuple[Job, str]] = []
        for record in sorted(records.values(), key=lambda r: r.seq):
            spec = JobSpec.from_dict(record.spec)
            job = Job(
                id=record.job_id,
                seq=record.seq,
                spec=spec,
                priority=record.priority,
                client=record.client,
                job_key=record.job_key or self.job_key(spec),
                coalesced_with=record.coalesced_with,
                result_digest=record.result_digest,
                error=record.error,
            )
            self._jobs[job.id] = job
            if record.coalesced_with is not None:
                job.state = "coalesced"
                attached_later.append((job, record.coalesced_with))
                continue
            if record.terminal:
                job.state = record.state
                continue
            # submitted/started with no terminal event: the work this
            # daemon owes.  Results live in the content-addressed cache,
            # so re-execution is idempotent and byte-identical.
            job.state = "queued"
            job.resumed = True
            self.stats.resumed += 1
            decision = self.controller.offer(job, job.priority, job.seq)
            if not decision.accepted:
                self._finalize_locked(
                    job, "shed", error="queue capacity shrank across restart"
                )
                self._journal_finalize(job, "shed", job.error)
                continue
            self._inflight[job.job_key] = job.id
            try:
                self.journal.resume(job.id)
            except JournalError:
                pass
        for job, primary_id in attached_later:
            primary = self._jobs.get(primary_id)
            if primary is None:
                job.state = "failed"
                job.error = "coalesce primary lost from journal"
            elif not primary.terminal:
                primary.attached.append(job.id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get_job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def effective_state(self, job: Job) -> str:
        """A job's observable state; attached jobs mirror their primary."""
        with self._lock:
            if job.coalesced_with is not None and not job.terminal:
                primary = self._jobs.get(job.coalesced_with)
                if primary is not None:
                    return primary.state
            return job.state

    def result_for(self, job: Job) -> Optional[str]:
        """The canonical reports JSON a job resolves to (via coalescing)."""
        with self._lock:
            target = job
            if job.coalesced_with is not None:
                primary = self._jobs.get(job.coalesced_with)
                if primary is not None:
                    target = primary
            return target.result_json

    def job_dict(self, job: Job) -> Dict[str, object]:
        state = self.effective_state(job)
        return {
            "id": job.id,
            "state": state,
            "priority": job.priority,
            "client": job.client,
            "job_key": job.job_key,
            "coalesced_with": job.coalesced_with,
            "attached": list(job.attached),
            "algorithms": list(job.spec.algorithms),
            "graphs": list(job.spec.graphs),
            "submitted_at": job.submitted_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
            "executor": job.executor_used,
            "error": job.error,
            "resumed": job.resumed,
            "result_available": self.result_for(job) is not None,
            "result_digest": job.result_digest,
        }

    def jobs_dict(self) -> List[Dict[str, object]]:
        with self._lock:
            jobs = list(self._jobs.values())
        return [self.job_dict(job) for job in jobs]

    def stats_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = dict(self.stats.to_dict())
        payload.update(
            queue_depth=self.controller.depth(),
            running=len(self._running),
            jobs_total=len(self._jobs),
            accepting=self._accepting,
            draining=self._draining,
            uptime_seconds=time.time() - self.started_at,
            spills_collected=len(self.spills_collected),
            cache=dataclasses.asdict(self.service.stats),
            kernel_tier=self.kernel_tier,
            kernel_provider=(
                compiled_provider_name()
                if self.kernel_tier == "compiled"
                else None
            ),
            warm_compile_s=self.warm_compile_s,
        )
        return payload

    def cancel(self, job_id: str) -> Tuple[int, str]:
        """Cancel one job; returns ``(http_status, reason)``."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return 404, f"unknown job {job_id!r}"
            if job.terminal:
                return 409, f"job {job_id} already {job.state}"
            if job.state == "coalesced":
                self._finalize_locked(job, "cancelled")
            elif job.state == "queued":
                self.controller.remove(job_id)
                self._finalize_locked(job, "cancelled")
            else:  # running: abandon, don't block (watchdog semantics)
                self._finalize_locked(
                    job, "cancelled", error="cancelled while running"
                )
        self._journal_finalize(job, "cancelled", job.error)
        return 200, "cancelled"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("daemon is not serving")
        return self._server.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> None:
        """Start scheduler, watchdog, and the HTTP server (background)."""
        self._server = _DaemonHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._server.simulation_daemon = self  # type: ignore[attr-defined]
        for target, name in (
            (self._scheduler_loop, "repro-serve-scheduler"),
            (self._watchdog_loop, "repro-serve-watchdog"),
            (self._server.serve_forever, "repro-serve-http"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        if self.config.announce:
            payload = {
                "pid": os.getpid(),
                "port": self.port,
                "url": self.base_url,
            }
            with open(self.config.announce, "w") as handle:
                json.dump(payload, handle)

    def drain(self) -> None:
        """Stop admitting and stop starting queued jobs; keep serving
        status.  Queued jobs stay journaled and resume after restart."""
        self._accepting = False
        self._draining = True

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: drain, bounded wait, journal, exit."""
        if self._stopped.is_set():
            return
        if drain:
            self.drain()
            deadline = time.time() + self.config.drain_timeout
            while self._running and time.time() < deadline:
                time.sleep(self.config.poll_interval)
        self._stop.set()
        if self.journal is not None:
            try:
                self.journal.shutdown()
            except JournalError:
                pass
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        self._stopped.set()

    def run_forever(self, install_signals: bool = True) -> None:
        """Start and block until SIGTERM/SIGINT, then drain and stop."""
        self.start()
        stop_requested = threading.Event()
        if install_signals:

            def _handler(signum, frame):  # noqa: ARG001
                stop_requested.set()

            signal.signal(signal.SIGTERM, _handler)
            signal.signal(signal.SIGINT, _handler)
        try:
            while not stop_requested.is_set():
                stop_requested.wait(0.2)
        finally:
            self.stop(drain=True)


class _DaemonHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


_JOB_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9_.-]+)(/result)?$")


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the daemon; every response is JSON."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def daemon(self) -> SimulationDaemon:
        return self.server.simulation_daemon  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # the journal and stats are the observability surface

    # -- plumbing ------------------------------------------------------
    def _send(
        self,
        status: int,
        payload: Dict[str, object],
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{max(retry_after, 0.0):.3f}")
        self.end_headers()
        self.wfile.write(body)

    def _send_raw(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise JobValidationError(f"request body is not JSON: {exc}")
        if not isinstance(parsed, dict):
            raise JobValidationError("request body must be a JSON object")
        return parsed

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        daemon = self.daemon
        if self.path == "/healthz":
            self._send(200, {"status": "ok", "pid": os.getpid()})
            return
        if self.path == "/readyz":
            if daemon._accepting:
                self._send(200, {"status": "ready"})
            else:
                self._send(
                    503,
                    {"status": "draining"},
                    retry_after=daemon.config.drain_timeout,
                )
            return
        if self.path == "/v1/stats":
            self._send(200, daemon.stats_dict())
            return
        if self.path == "/v1/jobs":
            self._send(200, {"jobs": daemon.jobs_dict()})
            return
        match = _JOB_PATH.match(self.path)
        if match:
            job = daemon.get_job(match.group(1))
            if job is None:
                self._send(404, {"error": f"unknown job {match.group(1)!r}"})
                return
            if match.group(2):  # /result
                state = daemon.effective_state(job)
                if state != "done":
                    self._send(
                        409,
                        {"error": "job not finished", "state": state},
                    )
                    return
                result = daemon.result_for(job)
                if result is None:
                    self._send(
                        410,
                        {
                            "error": "result evicted; resubmit (cells "
                            "replay from the persistent cache)"
                        },
                    )
                    return
                self._send_raw(200, result)
                return
            self._send(200, daemon.job_dict(job))
            return
        self._send(404, {"error": f"no route for GET {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        daemon = self.daemon
        if self.path == "/v1/drain":
            daemon.drain()
            self._send(202, {"draining": True})
            return
        if self.path == "/v1/plans":
            try:
                data = self._read_json()
            except JobValidationError as exc:
                self._send(400, {"error": str(exc)})
                return
            client = str(
                data.get("client")
                or self.headers.get("X-Client")
                or "anonymous"
            )
            priority: Optional[int]
            try:
                raw_priority = data.get("priority")
                priority = (
                    None if raw_priority is None else int(raw_priority)  # type: ignore[arg-type]
                )
            except (TypeError, ValueError):
                self._send(400, {"error": "'priority' must be an integer"})
                return
            status, payload = daemon.plan_submission(
                data,
                priority=priority,
                client=client,
                dry_run=bool(data.get("dry_run", False)),
            )
            self._send(status, payload)
            return
        if self.path != "/v1/jobs":
            self._send(404, {"error": f"no route for POST {self.path}"})
            return
        try:
            data = self._read_json()
        except JobValidationError as exc:
            self._send(400, {"error": str(exc)})
            return
        client = str(
            data.get("client") or self.headers.get("X-Client") or "anonymous"
        )
        try:
            priority = int(data.get("priority", 0))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            self._send(400, {"error": "'priority' must be an integer"})
            return
        job, decision = daemon.submit(data, priority=priority, client=client)
        if job is None:
            self._send(
                decision.status,
                {"error": decision.reason or "rejected"},
                retry_after=decision.retry_after,
            )
            return
        self._send(
            202,
            {
                "job": daemon.job_dict(job),
                "coalesced": decision.reason == "coalesced",
                "shed": list(decision.shed),
            },
        )

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        match = _JOB_PATH.match(self.path)
        if match and not match.group(2):
            status, reason = self.daemon.cancel(match.group(1))
            self._send(
                status if status != 200 else 200,
                {"status": reason} if status == 200 else {"error": reason},
            )
            return
        self._send(404, {"error": f"no route for DELETE {self.path}"})


# ----------------------------------------------------------------------
# Client helpers (CLI, tests, smoke scripts)
# ----------------------------------------------------------------------


def http_json(
    url: str,
    method: str = "GET",
    payload: Optional[Dict[str, object]] = None,
    timeout: float = 10.0,
) -> Tuple[int, Dict[str, str], object]:
    """One JSON round trip; returns ``(status, headers, parsed_body)``.

    HTTP error statuses are returned, not raised, so callers can read
    ``Retry-After`` and the error body.
    """
    data = (
        json.dumps(payload).encode("utf-8") if payload is not None else None
    )
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            status = response.status
            headers = dict(response.headers.items())
            body = response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        status = exc.code
        headers = dict(exc.headers.items()) if exc.headers else {}
        body = exc.read().decode("utf-8")
    try:
        parsed: object = json.loads(body)
    except ValueError:
        parsed = body
    return status, headers, parsed


def submit_job(
    base_url: str,
    algorithms: Sequence[str],
    graphs: Sequence[str],
    priority: int = 0,
    client: str = "cli",
    timeout: float = 10.0,
) -> Tuple[int, Dict[str, str], object]:
    """POST one job; returns the raw ``(status, headers, body)`` triple."""
    return http_json(
        f"{base_url}/v1/jobs",
        method="POST",
        payload={
            "algorithms": list(algorithms),
            "graphs": list(graphs),
            "priority": priority,
            "client": client,
        },
        timeout=timeout,
    )


def submit_plan(
    base_url: str,
    yaml_text: Optional[str] = None,
    spec: Optional[Dict[str, object]] = None,
    priority: Optional[int] = None,
    client: str = "cli",
    dry_run: bool = False,
    timeout: float = 10.0,
) -> Tuple[int, Dict[str, str], object]:
    """POST one declarative plan; ``(status, headers, body)`` triple."""
    payload: Dict[str, object] = {"client": client, "dry_run": dry_run}
    if yaml_text is not None:
        payload["yaml"] = yaml_text
    if spec is not None:
        payload["spec"] = spec
    if priority is not None:
        payload["priority"] = priority
    return http_json(
        f"{base_url}/v1/plans",
        method="POST",
        payload=payload,
        timeout=timeout,
    )


def wait_for_job(
    base_url: str,
    job_id: str,
    timeout: float = 60.0,
    poll: float = 0.1,
) -> Dict[str, object]:
    """Poll one job until it reaches a terminal state; returns its dict."""
    deadline = time.monotonic() + timeout
    while True:
        status, _, body = http_json(f"{base_url}/v1/jobs/{job_id}")
        if status == 200 and isinstance(body, dict):
            if body.get("state") in _TERMINAL_STATES:
                return body
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"job {job_id} did not finish within {timeout}s "
                f"(last status {status}: {body})"
            )
        time.sleep(poll)


def fetch_result(
    base_url: str, job_id: str, timeout: float = 10.0
) -> Tuple[int, str]:
    """GET a job's canonical reports JSON; returns ``(status, text)``."""
    status, _, body = http_json(
        f"{base_url}/v1/jobs/{job_id}/result", timeout=timeout
    )
    if isinstance(body, str):
        return status, body
    return status, json.dumps(body, sort_keys=True)
