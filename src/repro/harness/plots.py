"""Terminal (ASCII) plotting for figure output.

The repository is matplotlib-free; these renderers draw the paper's bar
charts and line series as monospace text, good enough to eyeball shapes in
CI logs:

* :func:`bar_chart`          -- one horizontal bar per label;
* :func:`grouped_bar_chart`  -- the Figs. 6/7/9 style: groups of bars per
  (algorithm, graph) cell;
* :func:`line_series`        -- the Fig. 14e/14f style scaling curves.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

__all__ = ["bar_chart", "grouped_bar_chart", "line_series"]

_FULL = "#"


def _scale(value: float, maximum: float, width: int) -> int:
    if maximum <= 0:
        return 0
    return max(0, min(width, round(value / maximum * width)))


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """One horizontal bar per entry, scaled to the maximum."""
    if not values:
        return title
    maximum = max(values.values())
    label_width = max(len(label) for label in values)
    lines: List[str] = [title] if title else []
    for label, value in values.items():
        bar = _FULL * _scale(value, maximum, width)
        lines.append(
            f"{label.rjust(label_width)} | {bar} {value:.2f}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 40,
    title: str = "",
    unit: str = "",
) -> str:
    """Per-group clusters of one bar per series (Figs. 6/7 layout).

    Args:
        groups: group labels, e.g. ``["BFS/FR", "BFS/PK", ...]``.
        series: series name -> one value per group.
    """
    for name, values in series.items():
        if len(values) != len(groups):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(groups)} groups"
            )
    maximum = max(
        (v for values in series.values() for v in values), default=0.0
    )
    label_width = max(
        [len(g) for g in groups] + [len(s) for s in series], default=1
    )
    lines: List[str] = [title] if title else []
    for index, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            bar = _FULL * _scale(values[index], maximum, width)
            lines.append(
                f"  {name.rjust(label_width)} | {bar} "
                f"{values[index]:.2f}{unit}"
            )
    return "\n".join(lines)


def line_series(
    x_labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    title: str = "",
) -> str:
    """A character-grid line plot (one symbol per series).

    Values are scaled into ``height`` rows; each series uses the first
    letter of its name as the marker.
    """
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_labels)} x positions"
            )
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        return title
    low, high = min(all_values), max(all_values)
    span = high - low or 1.0

    columns = len(x_labels)
    col_width = max(max((len(x) for x in x_labels), default=1) + 1, 6)
    grid = [[" "] * (columns * col_width) for _ in range(height)]
    for name, values in series.items():
        marker = name[0].upper()
        for col, value in enumerate(values):
            row = height - 1 - _scale(value - low, span, height - 1)
            position = col * col_width + col_width // 2
            if grid[row][position] not in (" ", marker):
                grid[row][position] = "*"  # overlapping series
            else:
                grid[row][position] = marker

    lines: List[str] = [title] if title else []
    lines.append(f"max {high:.2f}")
    lines.extend("".join(row).rstrip() for row in grid)
    lines.append(f"min {low:.2f}")
    axis = "".join(x.center(col_width) for x in x_labels)
    lines.append(axis.rstrip())
    legend = "  ".join(f"{name[0].upper()}={name}" for name in series)
    lines.append(legend)
    return "\n".join(lines)
