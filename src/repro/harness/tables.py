"""Regenerators for the paper's tables."""

from __future__ import annotations

from typing import List

from ..energy.components import GRAPHDYNS_BUDGET, GRAPHICIONADO_BUDGET
from ..graph.datasets import DATASETS
from ..graphdyns.config import DEFAULT_CONFIG
from ..graphicionado.config import GRAPHICIONADO_CONFIG
from ..gpu.config import V100_GUNROCK
from ..vcpm.algorithms import ALGORITHMS
from .figures import FigureResult

__all__ = ["table1", "table2", "table3", "table4"]


def table1() -> FigureResult:
    """Irregularity coverage matrix (which system solves what)."""
    rows = [
        ["Workload", "preprocessing only", "unsolved", "solved (WB dispatch)"],
        ["Traversal", "preprocessing only", "partially (on-chip VB)",
         "solved (EP + zero-stall atomics)"],
        ["Update", "unsolved", "unsolved", "solved (RB bitmap + coalescing)"],
    ]
    return FigureResult(
        figure="Table 1: irregularity coverage",
        headers=["irregularity", "GPU-based", "Graphicionado", "GraphDynS"],
        rows=rows,
    )


def table2() -> FigureResult:
    """Application-defined functions of the five algorithms."""
    descriptions = {
        "BFS": ("u.prop + 1", "min(tProp, res)", "min(prop, tProp)"),
        "SSSP": ("u.prop + e.weight", "min(tProp, res)", "min(prop, tProp)"),
        "CC": ("u.prop", "min(tProp, res)", "min(prop, tProp)"),
        "SSWP": ("min(u.prop, e.weight)", "max(tProp, res)", "max(prop, tProp)"),
        "PR": ("u.prop", "tProp + res", "(a + b*tProp)/deg"),
    }
    rows: List[List[object]] = []
    for name, spec in ALGORITHMS.items():
        process, reduce_, apply_ = descriptions[name]
        rows.append(
            [
                name,
                process,
                reduce_,
                apply_,
                spec.reduce_op.value,
                "yes" if spec.uses_weights else "no",
            ]
        )
    return FigureResult(
        figure="Table 2: application-defined functions",
        headers=["algo", "Process_Edge", "Reduce", "Apply", "reduce_op", "weighted"],
        rows=rows,
    )


def table3() -> FigureResult:
    """System configurations of the three compared platforms."""
    gds, gio, gpu = DEFAULT_CONFIG, GRAPHICIONADO_CONFIG, V100_GUNROCK
    rows = [
        [
            "Compute",
            f"{gds.frequency_hz/1e9:.0f}GHz {gds.num_pes}xSIMT{gds.n_simt}",
            f"{gio.frequency_hz/1e9:.0f}GHz {gio.num_streams}xStreams",
            f"{gpu.frequency_hz/1e9:.2f}GHz {gpu.num_cores}xcores",
        ],
        [
            "On-chip memory",
            f"{gds.vb_total_bytes // (1024*1024)}MB eDRAM",
            f"{gio.edram_bytes // (1024*1024)}MB eDRAM",
            f"{gpu.onchip_bytes // (1024*1024)}MB",
        ],
        [
            "Off-chip memory",
            "512GB/s HBM 1.0",
            "512GB/s HBM 1.0",
            "900GB/s HBM 2.0",
        ],
        [
            "Power budget",
            f"{GRAPHDYNS_BUDGET.total_power_w:.2f}W",
            f"{GRAPHICIONADO_BUDGET.total_power_w:.2f}W",
            f"{gpu.average_power_w:.0f}W (avg)",
        ],
    ]
    return FigureResult(
        figure="Table 3: system configurations",
        headers=["", "GraphDynS", "Graphicionado", "Gunrock (V100)"],
        rows=rows,
    )


def table4() -> FigureResult:
    """Dataset inventory: paper dimensions vs proxy dimensions."""
    rows: List[List[object]] = []
    for key, spec in DATASETS.items():
        rows.append(
            [
                key,
                spec.full_name,
                f"{spec.paper_vertices/1e6:.2f}M",
                f"{spec.paper_edges/1e6:.2f}M",
                spec.proxy_vertices,
                spec.proxy_edges,
                f"{spec.edge_to_vertex_ratio:.1f}",
                spec.description,
            ]
        )
    return FigureResult(
        figure="Table 4: graph datasets (paper vs proxy)",
        headers=[
            "key", "name", "paper_V", "paper_E",
            "proxy_V", "proxy_E", "E/V", "description",
        ],
        rows=rows,
    )
