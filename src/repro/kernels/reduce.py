"""Closed-form/array kernels for the Reduce Pipelines (Section 5.2.3).

The scalar models in :mod:`repro.core.reduce_pipeline` replay the op
stream cycle by cycle.  Both pipelines, however, admit exact closed
forms:

* **ZeroStall** never bubbles, so its cycle count is ``n + DEPTH - 1``
  and its Vertex Buffer outcome is the plain sequential fold -- which a
  grouped ``ufunc.at`` computes in the same left-to-right order the
  pipeline retires ops.
* **Stalling** bubbles only for same-address ops at pipeline distance 1
  or 2 (anything further back has already written back), so the stall
  count depends only on *last-occurrence distances*, not on replaying
  the in-flight slots.  Writing ``d_j`` for the cumulative stalls after
  op ``j`` issues, the recurrence is::

      d_j = d_{j-1} + 2                    if addr_j == addr_{j-1}
      d_j = max(d_{j-1}, d_{j-2} + 1)      if addr_j == addr_{j-2} only
      d_j = d_{j-1}                        otherwise

  The distance-2 case adds a bubble exactly when op ``j-1`` did not
  stall, so within a run of consecutive distance-2 conflicts the bubbles
  alternate -- which turns the whole recurrence into run-length
  bookkeeping over two shifted equality masks (the ``np.searchsorted``
  last-occurrence trick specialized to a depth-3 pipeline).

Both kernels return the same :class:`~repro.core.reduce_pipeline.
ReduceResult` as the scalar pipelines; equivalence is asserted
bit-exactly in ``tests/test_kernels_equivalence.py``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.reduce_pipeline import (
    ReduceResult,
    StallingReducePipeline,
    ZeroStallReducePipeline,
)
from ..vcpm.spec import ReduceOp

__all__ = [
    "split_ops",
    "fold_ops",
    "zero_stall_run",
    "stalling_cycle_model",
    "stalling_run",
]


def split_ops(
    ops: Sequence[Tuple[int, float]]
) -> Tuple[np.ndarray, np.ndarray]:
    """``(address, value)`` tuples -> separate int64/float64 arrays."""
    n = len(ops)
    addrs = np.fromiter((op[0] for op in ops), dtype=np.int64, count=n)
    values = np.fromiter((op[1] for op in ops), dtype=np.float64, count=n)
    return addrs, values


def fold_ops(
    addrs: np.ndarray,
    values: np.ndarray,
    reduce_op: ReduceOp,
    vb: Optional[Dict[int, float]] = None,
    identity: Optional[float] = None,
) -> Dict[int, float]:
    """Sequential fold of an op stream into a Vertex Buffer dict.

    Grouped rendering of ``vb[a] = op.scalar(vb.get(a, identity), v)``:
    ``ufunc.at`` applies repeated indices in element order, so SUM
    accumulation order (and therefore every rounding step) matches the
    scalar loop exactly.
    """
    identity = reduce_op.identity if identity is None else identity
    out = dict(vb) if vb else {}
    addrs = np.asarray(addrs, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if addrs.size == 0:
        return out
    uniq, inverse = np.unique(addrs, return_inverse=True)
    acc = np.full(uniq.size, identity, dtype=np.float64)
    if out:
        keys = np.fromiter(out.keys(), dtype=np.int64, count=len(out))
        vals = np.fromiter(out.values(), dtype=np.float64, count=len(out))
        pos = np.searchsorted(uniq, keys)
        pos_clipped = np.minimum(pos, uniq.size - 1)
        present = uniq[pos_clipped] == keys
        acc[pos_clipped[present]] = vals[present]
    reduce_op.ufunc.at(acc, inverse, values)
    out.update(zip(uniq.tolist(), acc.tolist()))
    return out


def _compiled_or_none(tier: Optional[str]):
    """Resolve a tier request to the compiled module, or None for vectorized.

    ``tier=None`` keeps the historical behavior of these functions (they
    *are* the vectorized tier); ``"compiled"``/``"auto"`` route through
    the registry with its warn-once fallback.
    """
    if tier is None or tier == "vectorized":
        return None
    from .tiers import resolve_tier

    if resolve_tier(tier) != "compiled":
        return None
    from . import compiled as _compiled

    return _compiled if _compiled.get_provider() is not None else None


def zero_stall_run(
    addrs: np.ndarray,
    values: np.ndarray,
    reduce_op: ReduceOp,
    vb: Optional[Dict[int, float]] = None,
    identity: Optional[float] = None,
    tier: Optional[str] = None,
) -> ReduceResult:
    """Vectorized :meth:`ZeroStallReducePipeline.run`.

    The forwarding paths make the pipeline sequentially consistent and
    stall-free, so the closed form is immediate: ``n + DEPTH - 1``
    cycles and the sequential fold as the VB outcome.  ``tier="compiled"``
    replaces the grouped fold with the native single-pass kernel.
    """
    compiled = _compiled_or_none(tier)
    if compiled is not None:
        return compiled.zero_stall_run_compiled(
            np.asarray(addrs), np.asarray(values), reduce_op, vb=vb, identity=identity
        )
    n = int(np.asarray(addrs).size)
    total_cycles = n + ZeroStallReducePipeline.DEPTH - 1 if n else 0
    return ReduceResult(
        cycles=total_cycles,
        ops=n,
        stall_cycles=0,
        vb=fold_ops(addrs, values, reduce_op, vb=vb, identity=identity),
    )


def stalling_cycle_model(addrs: np.ndarray) -> Tuple[int, int]:
    """``(cycles, stall_cycles)`` of the stall-on-conflict pipeline.

    Pure array computation over the two last-occurrence masks; see the
    module docstring for the derivation.
    """
    addrs = np.asarray(addrs, dtype=np.int64)
    n = int(addrs.size)
    if n == 0:
        return 0, 0
    bubbles = np.zeros(n, dtype=np.int64)
    dist1 = np.zeros(n, dtype=bool)
    dist2 = np.zeros(n, dtype=bool)
    dist1[1:] = addrs[1:] == addrs[:-1]
    dist2[2:] = (addrs[2:] == addrs[:-2]) & ~dist1[2:]
    # Distance-1 conflicts always bubble twice (wait out EXE and WB).
    bubbles[dist1] = 2
    # Distance-2 conflicts bubble once iff the previous op issued with no
    # bubble of its own; inside a run of consecutive distance-2 conflicts
    # this alternates, seeded by whether the op before the run stalled.
    conflict_idx = np.flatnonzero(dist2)
    if conflict_idx.size:
        new_run = np.ones(conflict_idx.size, dtype=bool)
        new_run[1:] = np.diff(conflict_idx) > 1
        run_id = np.cumsum(new_run) - 1
        run_start = conflict_idx[new_run]
        pos_in_run = conflict_idx - run_start[run_id]
        # A run starts at index >= 2 and its predecessor is never itself
        # a distance-2 conflict, so it stalled iff it was a distance-1 hit.
        seed = np.where(dist1[run_start - 1], 0, 1)
        bubbles[conflict_idx] = (seed[run_id] + pos_in_run) % 2
    stalls = int(bubbles.sum())
    # One issue cycle per op, plus the two-cycle pipeline drain.
    return n + stalls + StallingReducePipeline.DEPTH - 1, stalls


def stalling_run(
    addrs: np.ndarray,
    values: np.ndarray,
    reduce_op: ReduceOp,
    vb: Optional[Dict[int, float]] = None,
    identity: Optional[float] = None,
    tier: Optional[str] = None,
) -> ReduceResult:
    """Vectorized :meth:`StallingReducePipeline.run`.

    ``tier="compiled"`` runs the whole pass (bubble recurrence + fold) as
    one native O(n) loop with no address sort -- the big win at paper
    scale, where ``np.unique`` dominates this function's profile.
    """
    compiled = _compiled_or_none(tier)
    if compiled is not None:
        return compiled.stalling_run_compiled(
            np.asarray(addrs), np.asarray(values), reduce_op, vb=vb, identity=identity
        )
    cycles, stalls = stalling_cycle_model(addrs)
    return ReduceResult(
        cycles=cycles,
        ops=int(np.asarray(addrs).size),
        stall_cycles=stalls,
        vb=fold_ops(addrs, values, reduce_op, vb=vb, identity=identity),
    )
