"""Reference implementations of the compiled-tier kernels.

These four functions are written in a deliberately restricted "nopython"
style -- plain loops over preallocated numpy arrays, no Python dicts, no
closures -- so that the *same source* serves three providers:

* ``numba``: each function is wrapped with ``@njit(cache=True)`` by
  :mod:`repro.kernels._compiled_numba` (no source duplication, so the
  JIT-compiled semantics cannot drift from what the tests exercise).
* ``python``: the functions run as-is.  Slow, but always available, which
  lets the equivalence suite cover the exact numba code paths even on
  machines without numba installed.
* ``cffi``: :mod:`repro.kernels._compiled_cffi` carries a line-for-line C
  translation of these loops; this module is its readable reference.

Bit-exactness contract: every arithmetic step mirrors the retained scalar
references (``StallingReducePipeline.run``, ``_drain_event_loop``, the
per-vertex loops in ``repro.vcpm.optimized``) operation for operation on
IEEE doubles, so results are identical to the last bit, not just close.

Opcode tables (shared with both compiled providers):

======  ===========================  =======================================
code    reduce / fold                ``ReduceOp``
======  ===========================  =======================================
0       min                          ``ReduceOp.MIN``
1       max                          ``ReduceOp.MAX``
2       sum                          ``ReduceOp.SUM``
======  ===========================  =======================================

======  ===========================  =======================================
code    process_edge                 algorithms
======  ===========================  =======================================
0       ``u + 1``                    BFS
1       ``u + w``                    SSSP
2       ``u``                        CC, PR
3       ``min(u, w)``                SSWP
======  ===========================  =======================================

======  ===========================  =======================================
code    apply                        algorithms
======  ===========================  =======================================
0       ``min(prop, t_prop)``        BFS, SSSP, CC
1       ``max(prop, t_prop)``        SSWP
2       PageRank rank update         PR
======  ===========================  =======================================
"""

from __future__ import annotations

import numpy as np

# Reduce/fold opcodes.
OP_MIN = 0
OP_MAX = 1
OP_SUM = 2

# process_edge opcodes.
PE_ADD_ONE = 0
PE_ADD_WEIGHT = 1
PE_COPY = 2
PE_MIN_WEIGHT = 3

# apply opcodes.
APPLY_MIN = 0
APPLY_MAX = 1
APPLY_PAGERANK = 2

# Pipeline geometry shared with repro.core.reduce_pipeline (DEPTH = 3:
# read / reduce / write, with a 2-cycle reuse bubble on same-address ops).
PIPELINE_DEPTH = 3
REUSE_BUBBLE = 2


def stalling_reduce(addrs, values, vb_addrs, vb_vals, opcode, identity, out_addrs, out_vals):
    """One pass of the stalling reduce pipeline over an op stream.

    Exact port of ``StallingReducePipeline.run``: per-address last-issue
    bubbles (an op may not issue until 2 cycles after the previous op to
    the same address issued), plus the sequential in-order fold into the
    vertex buffer.  The address -> slot map is an open-addressing table so
    the pass is O(n) with no sort -- this is where the compiled tier beats
    the ``np.unique``-based vectorized fold at scale.

    ``vb_addrs``/``vb_vals`` seed the vertex buffer (existing entries fold
    into, exactly like ``vb.get(addr, identity)`` in the scalar path).
    ``out_addrs``/``out_vals`` must be preallocated with ``len(addrs)``
    slots; touched addresses are written in first-touch order.

    Returns ``(n_out, cycles, stall_cycles)``.
    """
    n = addrs.shape[0]
    n_vb = vb_addrs.shape[0]
    cap = 8
    while cap < 2 * (n + n_vb) + 2:
        cap <<= 1
    mask = cap - 1
    keys = np.empty(cap, np.int64)
    # 0 = empty, 1 = seeded from vb only, 2 = touched by an op.
    state = np.zeros(cap, np.uint8)
    acc = np.empty(cap, np.float64)
    last_issue = np.zeros(cap, np.int64)
    out_pos = np.empty(cap, np.int64)

    for i in range(n_vb):
        a = vb_addrs[i]
        h = (a ^ (a >> 16)) & mask
        while True:
            if state[h] == 0:
                keys[h] = a
                acc[h] = vb_vals[i]
                state[h] = 1
                break
            if keys[h] == a:
                acc[h] = vb_vals[i]
                break
            h = (h + 1) & mask

    cycles = 0
    stalls = 0
    n_out = 0
    for i in range(n):
        a = addrs[i]
        h = (a ^ (a >> 16)) & mask
        while True:
            if state[h] == 0:
                keys[h] = a
                acc[h] = identity
                state[h] = 2
                out_addrs[n_out] = a
                out_pos[h] = n_out
                n_out += 1
                break
            if keys[h] == a:
                if state[h] == 1:
                    state[h] = 2
                    out_addrs[n_out] = a
                    out_pos[h] = n_out
                    n_out += 1
                break
            h = (h + 1) & mask
        li = last_issue[h]
        if li > cycles:
            stalls += li - cycles
            cycles = li
        cycles += 1
        last_issue[h] = cycles + REUSE_BUBBLE
        v = values[i]
        cur = acc[h]
        if opcode == OP_MIN:
            if v < cur:
                acc[h] = v
        elif opcode == OP_MAX:
            if v > cur:
                acc[h] = v
        else:
            acc[h] = cur + v
    if n > 0:
        cycles += PIPELINE_DEPTH - 1

    for h in range(cap):
        if state[h] == 2:
            out_vals[out_pos[h]] = acc[h]
    return n_out, cycles, stalls


def micro_drain(ue, offsets, n_simt, num_ues, depth, max_cycles, out):
    """Exact event-loop drain of per-PE UE streams through bounded FIFOs.

    Port of ``repro.kernels.micro_drain._drain_event_loop``: each cycle,
    every PE issues up to ``n_simt`` updates in stream order, stopping at
    the first full FIFO (one back-pressure event); then every occupied UE
    retires one update.  ``ue`` is the concatenation of the per-PE UE-index
    streams, delimited by ``offsets`` (CSR-style, ``len == n_streams + 1``).

    Writes ``[cycles, delivered, backpressure, max_occupancy]`` into
    ``out`` and returns 0, or returns 1 when ``max_cycles`` elapses before
    the streams drain (caller raises the budget error).
    """
    total = ue.shape[0]
    n_streams = offsets.shape[0] - 1
    qlen = np.zeros(num_ues, np.int64)
    cursors = np.empty(n_streams, np.int64)
    for pe in range(n_streams):
        cursors[pe] = offsets[pe]
    delivered = 0
    backpressure = 0
    max_occ = 0
    cycle = 0
    while delivered < total:
        if cycle >= max_cycles:
            return 1
        for pe in range(n_streams):
            cursor = cursors[pe]
            end = offsets[pe + 1]
            issued = 0
            while issued < n_simt and cursor < end:
                u = ue[cursor]
                if qlen[u] >= depth:
                    backpressure += 1
                    break
                qlen[u] += 1
                cursor += 1
                issued += 1
            cursors[pe] = cursor
        occ = 0
        for u in range(num_ues):
            if qlen[u] > 0:
                qlen[u] -= 1
                delivered += 1
            if qlen[u] > occ:
                occ = qlen[u]
        if occ > max_occ:
            max_occ = occ
        cycle += 1
    out[0] = cycle
    out[1] = delivered
    out[2] = backpressure
    out[3] = max_occ
    return 0


def alg2_scatter(offsets, edges, weights, active, prop, t_prop, pe_kind, fold_kind):
    """Algorithm 2 Scatter: process_edge + reduce for one active frontier.

    Port of the scalar loop in ``repro.vcpm.optimized.run_optimized``:
    vertices in ``active`` order, edges in CSR order, sequential in-order
    fold into ``t_prop`` (updated in place).  Returns edges processed.
    """
    edges_processed = 0
    for k in range(active.shape[0]):
        u = active[k]
        lo = offsets[u]
        hi = offsets[u + 1]
        up = prop[u]
        for idx in range(lo, hi):
            w = weights[idx]
            if pe_kind == PE_ADD_ONE:
                res = up + 1.0
            elif pe_kind == PE_ADD_WEIGHT:
                res = up + w
            elif pe_kind == PE_COPY:
                res = up
            else:
                res = up if up < w else w
            v = edges[idx]
            cur = t_prop[v]
            if fold_kind == OP_MIN:
                if res < cur:
                    t_prop[v] = res
            elif fold_kind == OP_MAX:
                if res > cur:
                    t_prop[v] = res
            else:
                t_prop[v] = cur + res
        edges_processed += hi - lo
    return edges_processed


def alg2_apply(prop, t_prop, c_prop, apply_kind, alpha, beta, changed_mask):
    """Algorithm 2 Apply: per-vertex apply + activation mask.

    Port of the scalar Apply loop: computes the applied value for every
    vertex, writes it into ``prop`` in place, and sets ``changed_mask[i]``
    when the vertex's property changed (i.e. the vertex activates for the
    next iteration).  Returns the number of changed vertices.
    """
    changed = 0
    for i in range(prop.shape[0]):
        p = prop[i]
        t = t_prop[i]
        if apply_kind == APPLY_MIN:
            a = p if p < t else t
        elif apply_kind == APPLY_MAX:
            a = p if p > t else t
        else:
            c = c_prop[i]
            d = c if c > 1.0 else 1.0
            a = (alpha + beta * t) / d
        if p != a:
            prop[i] = a
            changed_mask[i] = 1
            changed += 1
        else:
            changed_mask[i] = 0
    return changed
