"""numba provider for the compiled kernel tier.

Wraps the reference implementations in :mod:`repro.kernels._kernels_py`
with ``@numba.njit(cache=True)`` -- same source, so the JIT-compiled
semantics cannot drift from the tested reference.  ``cache=True`` writes
the compiled artifacts next to the package so later processes skip the
JIT; the daemon's warm-compile hook triggers the first (expensive)
compilation at boot instead of on the first request.

:func:`load` returns ``None`` when numba is missing or JIT compilation
fails (e.g. an unsupported numba/numpy pairing); the tier registry turns
that into a warn-once fallback.
"""

from __future__ import annotations

from . import _kernels_py


def load():
    """JIT-compile the reference kernels; ``None`` if numba can't."""
    try:
        import numba
    except Exception:
        return None
    try:
        jit = numba.njit(cache=True)
        return {
            "stalling_reduce": jit(_kernels_py.stalling_reduce),
            "micro_drain": jit(_kernels_py.micro_drain),
            "alg2_scatter": jit(_kernels_py.alg2_scatter),
            "alg2_apply": jit(_kernels_py.alg2_apply),
        }
    except Exception:
        return None
