"""Compiled kernel tier: native implementations of the three hot loops.

Third implementation tier behind the equivalence oracle (see
:mod:`repro.kernels.tiers`): the stalling reduce-pipeline recurrence,
the exact Scatter micro-architecture event loop, and per-cell
Algorithm 2 iteration, each running as native code while producing
bit-identical results to the retained scalar references.

Providers, tried in order under ``REPRO_COMPILE_BACKEND=auto`` (the
default):

* ``numba`` -- ``@njit(cache=True)`` over the reference loops in
  :mod:`repro.kernels._kernels_py`.
* ``cffi``  -- a C translation of the same loops, built once with the
  system compiler and cached on disk
  (:mod:`repro.kernels._compiled_cffi`).

``REPRO_COMPILE_BACKEND`` accepts ``auto``/``numba``/``cffi``/``python``
/``none``; ``python`` runs the un-jitted reference loops (slow -- test
escape hatch only) and ``none`` disables the tier outright.  Each
provider is smoke-run on toy inputs at load, so a numba typing error or
a broken toolchain surfaces as "provider unavailable" (a warn-once
fallback) rather than a crash mid-run.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.reduce_pipeline import ReduceResult, ZeroStallReducePipeline
from ..vcpm.spec import AlgorithmSpec, ReduceOp
from . import _kernels_py

__all__ = [
    "get_provider",
    "load_seconds",
    "reset_provider_cache",
    "stalling_run_compiled",
    "zero_stall_run_compiled",
    "micro_drain_compiled",
    "alg2_supported",
    "run_optimized_compiled",
]

ENV_BACKEND = "REPRO_COMPILE_BACKEND"

_REDUCE_CODES = {
    ReduceOp.MIN: _kernels_py.OP_MIN,
    ReduceOp.MAX: _kernels_py.OP_MAX,
    ReduceOp.SUM: _kernels_py.OP_SUM,
}
_PE_CODES = {
    "add_one": _kernels_py.PE_ADD_ONE,
    "add_weight": _kernels_py.PE_ADD_WEIGHT,
    "copy": _kernels_py.PE_COPY,
    "min_weight": _kernels_py.PE_MIN_WEIGHT,
}
_APPLY_CODES = {
    "min": _kernels_py.APPLY_MIN,
    "max": _kernels_py.APPLY_MAX,
    "pagerank": _kernels_py.APPLY_PAGERANK,
}


def _i64(arr) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.int64)


def _f64(arr) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.float64)


class _FnProvider:
    """Provider over plain callables (numba-jitted or pure Python)."""

    def __init__(self, name: str, fns) -> None:
        self.name = name
        self._fns = fns

    def stalling_reduce(self, addrs, values, vb_addrs, vb_vals, opcode, identity):
        n = addrs.shape[0]
        out_addrs = np.empty(n, dtype=np.int64)
        out_vals = np.empty(n, dtype=np.float64)
        n_out, cycles, stalls = self._fns["stalling_reduce"](
            addrs, values, vb_addrs, vb_vals, opcode, identity, out_addrs, out_vals
        )
        return int(n_out), int(cycles), int(stalls), out_addrs, out_vals

    def micro_drain(self, ue, offsets, n_simt, num_ues, depth, max_cycles):
        out = np.zeros(4, dtype=np.int64)
        status = self._fns["micro_drain"](
            ue, offsets, n_simt, num_ues, depth, max_cycles, out
        )
        return int(status), out

    def alg2_scatter(self, offsets, edges, weights, active, prop, t_prop, pe_kind, fold_kind):
        return int(
            self._fns["alg2_scatter"](
                offsets, edges, weights, active, prop, t_prop, pe_kind, fold_kind
            )
        )

    def alg2_apply(self, prop, t_prop, c_prop, apply_kind, alpha, beta, mask):
        return int(
            self._fns["alg2_apply"](prop, t_prop, c_prop, apply_kind, alpha, beta, mask)
        )


class _CffiProvider:
    """Provider over the cffi-built C extension."""

    name = "cffi"

    def __init__(self, ffi, lib) -> None:
        self._ffi = ffi
        self._lib = lib

    def _i64p(self, arr):
        return self._ffi.cast("long long *", self._ffi.from_buffer(arr))

    def _f64p(self, arr):
        return self._ffi.cast("double *", self._ffi.from_buffer(arr))

    def _u8p(self, arr):
        return self._ffi.cast("unsigned char *", self._ffi.from_buffer(arr))

    def stalling_reduce(self, addrs, values, vb_addrs, vb_vals, opcode, identity):
        n = addrs.shape[0]
        out_addrs = np.empty(n, dtype=np.int64)
        out_vals = np.empty(n, dtype=np.float64)
        out_cycles = self._ffi.new("long long *")
        out_stalls = self._ffi.new("long long *")
        n_out = self._lib.repro_stalling_reduce(
            self._i64p(addrs),
            self._f64p(values),
            n,
            self._i64p(vb_addrs),
            self._f64p(vb_vals),
            vb_addrs.shape[0],
            opcode,
            identity,
            self._i64p(out_addrs),
            self._f64p(out_vals),
            out_cycles,
            out_stalls,
        )
        if n_out < 0:
            raise MemoryError("compiled stalling_reduce allocation failed")
        return int(n_out), int(out_cycles[0]), int(out_stalls[0]), out_addrs, out_vals

    def micro_drain(self, ue, offsets, n_simt, num_ues, depth, max_cycles):
        out = np.zeros(4, dtype=np.int64)
        status = self._lib.repro_micro_drain(
            self._i64p(ue),
            ue.shape[0],
            self._i64p(offsets),
            offsets.shape[0] - 1,
            n_simt,
            num_ues,
            depth,
            max_cycles,
            self._i64p(out),
        )
        if status < 0:
            raise MemoryError("compiled micro_drain allocation failed")
        return int(status), out

    def alg2_scatter(self, offsets, edges, weights, active, prop, t_prop, pe_kind, fold_kind):
        return int(
            self._lib.repro_alg2_scatter(
                self._i64p(offsets),
                self._i64p(edges),
                self._f64p(weights),
                self._i64p(active),
                active.shape[0],
                self._f64p(prop),
                self._f64p(t_prop),
                pe_kind,
                fold_kind,
            )
        )

    def alg2_apply(self, prop, t_prop, c_prop, apply_kind, alpha, beta, mask):
        return int(
            self._lib.repro_alg2_apply(
                self._f64p(prop),
                self._f64p(t_prop),
                self._f64p(c_prop),
                prop.shape[0],
                apply_kind,
                alpha,
                beta,
                self._u8p(mask),
            )
        )


def _smoke(provider) -> None:
    """Run every kernel once on toy inputs; raises on any breakage.

    For numba this is where JIT compilation actually happens, so typing
    errors surface here (and the daemon's warm-compile pays the cost once
    at boot instead of on the first request).
    """
    addrs = np.array([0, 1, 0], dtype=np.int64)
    vals = np.array([1.0, 2.0, 3.0], dtype=np.float64)
    empty_i = np.zeros(0, dtype=np.int64)
    empty_f = np.zeros(0, dtype=np.float64)
    n_out, cycles, stalls, oa, ov = provider.stalling_reduce(
        addrs, vals, empty_i, empty_f, _kernels_py.OP_SUM, 0.0
    )
    assert n_out == 2 and cycles >= 3 and ov[0] == 4.0, "stalling_reduce smoke failed"
    status, out = provider.micro_drain(
        np.array([0, 0, 1], dtype=np.int64),
        np.array([0, 3], dtype=np.int64),
        4,
        2,
        4,
        1000,
    )
    assert status == 0 and out[1] == 3, "micro_drain smoke failed"
    offsets = np.array([0, 2, 2], dtype=np.int64)
    edges = np.array([1, 1], dtype=np.int64)
    weights = np.array([1.0, 1.0], dtype=np.float64)
    prop = np.array([0.0, np.inf], dtype=np.float64)
    t_prop = np.array([np.inf, np.inf], dtype=np.float64)
    active = np.array([0], dtype=np.int64)
    ep = provider.alg2_scatter(
        offsets, edges, weights, active, prop, t_prop,
        _kernels_py.PE_ADD_ONE, _kernels_py.OP_MIN,
    )
    assert ep == 2 and t_prop[1] == 1.0, "alg2_scatter smoke failed"
    mask = np.zeros(2, dtype=np.uint8)
    changed = provider.alg2_apply(
        prop, t_prop, np.zeros(2), _kernels_py.APPLY_MIN, 0.15, 0.85, mask
    )
    assert changed == 1 and prop[1] == 1.0 and mask[1] == 1, "alg2_apply smoke failed"


_lock = threading.Lock()
_cached: Tuple[bool, Optional[object]] = (False, None)  # (resolved, provider)
_load_seconds: Optional[float] = None


def _load_provider():
    choice = os.environ.get(ENV_BACKEND, "auto").strip().lower() or "auto"
    if choice == "none":
        return None
    candidates = []
    if choice in ("auto", "numba"):
        candidates.append("numba")
    if choice in ("auto", "cffi"):
        candidates.append("cffi")
    if choice == "python":
        candidates.append("python")
    for name in candidates:
        try:
            if name == "numba":
                from . import _compiled_numba

                fns = _compiled_numba.load()
                provider = _FnProvider("numba", fns) if fns is not None else None
            elif name == "cffi":
                from . import _compiled_cffi

                built = _compiled_cffi.load()
                provider = _CffiProvider(*built) if built is not None else None
            else:
                provider = _FnProvider(
                    "python",
                    {
                        "stalling_reduce": _kernels_py.stalling_reduce,
                        "micro_drain": _kernels_py.micro_drain,
                        "alg2_scatter": _kernels_py.alg2_scatter,
                        "alg2_apply": _kernels_py.alg2_apply,
                    },
                )
            if provider is None:
                continue
            _smoke(provider)
            return provider
        except Exception:
            continue
    return None


def get_provider():
    """The process-wide compiled provider, or ``None`` when unavailable.

    Resolution (including any native compilation) happens once per
    process and is cached, so callers may treat this as cheap.
    """
    global _cached, _load_seconds
    resolved, provider = _cached
    if resolved:
        return provider
    with _lock:
        resolved, provider = _cached
        if resolved:
            return provider
        start = time.perf_counter()
        provider = _load_provider()
        _load_seconds = time.perf_counter() - start
        _cached = (True, provider)
        return provider


def load_seconds() -> Optional[float]:
    """Wall seconds spent loading/compiling the provider (None if never)."""
    return _load_seconds


def reset_provider_cache() -> None:
    """Drop the cached provider so the next call re-resolves (tests)."""
    global _cached, _load_seconds
    with _lock:
        _cached = (False, None)
        _load_seconds = None


def _require_provider():
    provider = get_provider()
    if provider is None:
        raise RuntimeError(
            "compiled kernel tier requested but no provider is available; "
            "resolve_tier() should have routed to 'vectorized' first"
        )
    return provider


def _vb_arrays(vb: Optional[Dict[int, float]]) -> Tuple[np.ndarray, np.ndarray]:
    if not vb:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
    keys = np.fromiter(vb.keys(), dtype=np.int64, count=len(vb))
    vals = np.fromiter(vb.values(), dtype=np.float64, count=len(vb))
    return keys, vals


def stalling_run_compiled(
    addrs: np.ndarray,
    values: np.ndarray,
    reduce_op: ReduceOp,
    vb: Optional[Dict[int, float]] = None,
    identity: Optional[float] = None,
) -> ReduceResult:
    """Compiled :meth:`StallingReducePipeline.run` (single O(n) pass).

    Unlike the vectorized kernel this never sorts the address stream:
    the bubble recurrence, the last-issue map and the sequential fold all
    live in one open-addressing pass, which is where the >=3x over
    ``np.unique`` + ``ufunc.at`` comes from at paper scale.
    """
    provider = _require_provider()
    addrs = _i64(addrs)
    values = _f64(values)
    identity = reduce_op.identity if identity is None else identity
    vb_addrs, vb_vals = _vb_arrays(vb)
    n_out, cycles, stalls, out_addrs, out_vals = provider.stalling_reduce(
        addrs, values, vb_addrs, vb_vals, _REDUCE_CODES[reduce_op], float(identity)
    )
    out = dict(vb) if vb else {}
    out.update(zip(out_addrs[:n_out].tolist(), out_vals[:n_out].tolist()))
    return ReduceResult(
        cycles=cycles, ops=int(addrs.size), stall_cycles=stalls, vb=out
    )


def zero_stall_run_compiled(
    addrs: np.ndarray,
    values: np.ndarray,
    reduce_op: ReduceOp,
    vb: Optional[Dict[int, float]] = None,
    identity: Optional[float] = None,
) -> ReduceResult:
    """Compiled :meth:`ZeroStallReducePipeline.run`.

    The forwarding pipeline never stalls, so only the sequential fold
    needs native code; the cycle count is the closed form.
    """
    provider = _require_provider()
    addrs = _i64(addrs)
    values = _f64(values)
    identity = reduce_op.identity if identity is None else identity
    vb_addrs, vb_vals = _vb_arrays(vb)
    n_out, _cycles, _stalls, out_addrs, out_vals = provider.stalling_reduce(
        addrs, values, vb_addrs, vb_vals, _REDUCE_CODES[reduce_op], float(identity)
    )
    out = dict(vb) if vb else {}
    out.update(zip(out_addrs[:n_out].tolist(), out_vals[:n_out].tolist()))
    n = int(addrs.size)
    return ReduceResult(
        cycles=n + ZeroStallReducePipeline.DEPTH - 1 if n else 0,
        ops=n,
        stall_cycles=0,
        vb=out,
    )


def micro_drain_compiled(
    pe_streams: Sequence[np.ndarray],
    num_ues: int,
    n_simt: int,
    ue_queue_depth: int,
    max_cycles: int,
):
    """Compiled exact event-loop drain; returns a ``MicroScatterResult``.

    Raises the same cycle-budget ``RuntimeError`` as the scalar replay.
    """
    from ..graphdyns.micro import MicroScatterResult

    provider = _require_provider()
    streams = [np.asarray(s, dtype=np.int64) for s in pe_streams]
    total = int(sum(s.size for s in streams))
    if total == 0:
        return MicroScatterResult(
            cycles=0,
            results_delivered=0,
            backpressure_events=0,
            max_ue_queue_occupancy=0,
        )
    ue = _i64(np.concatenate([s % num_ues for s in streams]))
    sizes = [0] + [int(s.size) for s in streams]
    offsets = _i64(np.cumsum(sizes))
    status, out = provider.micro_drain(
        ue, offsets, n_simt, num_ues, ue_queue_depth, max_cycles
    )
    if status == 1:
        raise RuntimeError("micro-model exceeded cycle budget")
    return MicroScatterResult(
        cycles=int(out[0]),
        results_delivered=int(out[1]),
        backpressure_events=int(out[2]),
        max_ue_queue_occupancy=int(out[3]),
    )


def alg2_supported(spec: AlgorithmSpec) -> bool:
    """Whether this spec carries the opcode metadata the native loops need."""
    return (
        getattr(spec, "process_edge_kind", None) in _PE_CODES
        and getattr(spec, "apply_kind", None) in _APPLY_CODES
    )


def run_optimized_compiled(
    graph,
    spec: AlgorithmSpec,
    source: Optional[int] = 0,
    max_iterations: Optional[int] = None,
    v_list_size: int = 8,
    pr_tolerance: float = 1e-7,
):
    """Compiled Algorithm 2: native Scatter/Apply, Python driver.

    Iteration structure, dispatch counters and convergence tests mirror
    the scalar ``run_optimized`` statement for statement; only the two
    per-element processing stages run as native code.  The PageRank
    convergence delta stays in numpy (``np.abs(...).sum()`` is a pairwise
    sum whose rounding the scalar reference shares).
    """
    from ..vcpm.optimized import OptimizedRunResult

    if v_list_size < 1:
        raise ValueError("v_list_size must be >= 1")
    if not alg2_supported(spec):
        raise ValueError(
            "spec {!r} lacks compiled opcode metadata "
            "(process_edge_kind/apply_kind)".format(spec.name)
        )
    provider = _require_provider()
    pe_kind = _PE_CODES[spec.process_edge_kind]
    apply_kind = _APPLY_CODES[spec.apply_kind]
    from ..vcpm.algorithms import PR_ALPHA, PR_BETA

    num_vertices = graph.num_vertices
    if max_iterations is None:
        max_iterations = spec.default_max_iterations
    if not spec.needs_source:
        source = None

    prop = _f64(spec.initial_prop(num_vertices, source))
    t_prop = _f64(spec.initial_tprop(num_vertices))
    deg = graph.out_degree().astype(np.float64)
    c_prop = deg if spec.uses_degree_cprop else np.zeros(num_vertices)
    if spec.uses_degree_cprop and num_vertices:
        prop = prop / np.maximum(c_prop, 1.0)
    prop = _f64(prop)
    c_prop = _f64(c_prop)

    offsets = _i64(graph.offsets)
    edges = _i64(graph.edges)
    weights = _f64(graph.weights)

    if spec.all_vertices_active_initially:
        active_ids = np.arange(num_vertices, dtype=np.int64)
    elif source is not None and num_vertices:
        active_ids = np.asarray([source], dtype=np.int64)
    else:
        active_ids = np.zeros(0, dtype=np.int64)

    scatter_dispatches = 0
    apply_dispatches = 0
    edges_processed = 0
    converged = False
    completed_iterations = 0
    workloads_per_iter = -(-num_vertices // v_list_size) if num_vertices else 0
    changed_mask = np.zeros(num_vertices, dtype=np.uint8)

    for _ in range(max_iterations):
        if active_ids.size == 0:
            converged = True
            break

        scatter_dispatches += int(active_ids.size)
        edges_processed += provider.alg2_scatter(
            offsets, edges, weights, _i64(active_ids), prop, t_prop,
            pe_kind, _REDUCE_CODES[spec.reduce_op],
        )

        apply_dispatches += workloads_per_iter
        old_prop = prop.copy()
        provider.alg2_apply(
            prop, t_prop, c_prop, apply_kind, PR_ALPHA, PR_BETA, changed_mask
        )

        completed_iterations += 1
        if spec.resets_tprop_each_iteration:
            t_prop = _f64(spec.initial_tprop(num_vertices))
            delta = float(np.abs(prop - old_prop).sum())
            if delta < pr_tolerance:
                converged = True
                break
            active_ids = np.arange(num_vertices, dtype=np.int64)
        else:
            active_ids = np.flatnonzero(changed_mask).astype(np.int64)
            if active_ids.size == 0:
                converged = True
                break

    return OptimizedRunResult(
        properties=prop,
        num_iterations=completed_iterations,
        converged=converged,
        scatter_dispatches=scatter_dispatches,
        apply_dispatches=apply_dispatches,
        edges_processed=edges_processed,
    )
