"""Vectorized drain model for the Scatter micro-architecture replay.

:func:`repro.graphdyns.micro.simulate_scatter_microarch` advances PE
issue slots, crossbar FIFOs, and UE Reduce Pipelines one cycle at a
time.  The feedback in that loop -- back-pressure from a full UE FIFO
stalls the owning PE's remaining lanes -- only exists when some queue
actually fills.  Whenever it does not, the whole simulation collapses
into per-UE order statistics:

* element ``k`` of PE ``p`` arrives at its UE in cycle ``k // n_simt``
  (PEs issue a full ``n_simt`` lanes every cycle);
* a UE retires one op per cycle, so with sorted arrival cycles ``a`` the
  retire cycle of the ``i``-th op is the running-max recurrence
  ``r_i = max(a_i, r_{i-1} + 1)``, i.e. ``cummax(a - i) + i``;
* queue occupancy after the issue (resp. retire) stage of cycle ``t``
  is ``#{a <= t} - #{r < t}`` (resp. ``#{r <= t}``), both of which peak
  at arrival cycles and fall out of two ``searchsorted`` calls.

The kernel first *proves* the no-back-pressure assumption from that
schedule (a push attempt fails exactly when post-issue occupancy would
exceed the FIFO depth); if any queue would fill, it falls back to an
exact event-driven replay over integer queue depths (FIFO contents are
never inspected, only lengths).  Either way the returned
:class:`MicroScatterResult` is bit-identical to the deque-based model.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..graphdyns.config import DEFAULT_CONFIG, GraphDynSConfig
from ..graphdyns.micro import MicroScatterResult

__all__ = ["simulate_scatter_microarch_vectorized"]


def _drain_closed_form(
    ue: np.ndarray,
    arrival: np.ndarray,
    num_ues: int,
    ue_queue_depth: int,
):
    """``(cycles, max_occupancy)`` of the no-back-pressure schedule.

    Returns ``None`` when some push attempt would find a full FIFO, in
    which case the schedule is invalid and the event loop must run.
    """
    cycles = 0
    max_occupancy = 0
    for u in range(num_ues):
        a = np.sort(arrival[ue == u])
        if a.size == 0:
            continue
        k = np.arange(a.size, dtype=np.int64)
        retire = np.maximum.accumulate(a - k) + k
        cycles = max(cycles, int(retire[-1]) + 1)
        # Occupancy the i-th push leaves behind: pushes so far this
        # schedule minus ops retired in strictly earlier cycles.
        after_issue = (k + 1) - np.searchsorted(retire, a, side="left")
        if int(after_issue.max()) > ue_queue_depth:
            return None
        after_retire = (k + 1) - np.searchsorted(retire, a, side="right")
        max_occupancy = max(max_occupancy, int(after_retire.max()))
    return cycles, max_occupancy


def _drain_event_loop(
    ue_streams: List[List[int]],
    num_ues: int,
    n_simt: int,
    ue_queue_depth: int,
    total: int,
    max_cycles: int,
) -> MicroScatterResult:
    """Exact replay with back-pressure, tracking FIFO lengths only."""
    qlen = np.zeros(num_ues, dtype=np.int64)
    cursors = [0] * len(ue_streams)
    delivered = 0
    backpressure = 0
    max_occupancy = 0
    cycle = 0
    while delivered < total:
        if cycle >= max_cycles:
            raise RuntimeError("micro-model exceeded cycle budget")
        for pe, stream in enumerate(ue_streams):
            cursor = cursors[pe]
            issued = 0
            size = len(stream)
            while issued < n_simt and cursor < size:
                u = stream[cursor]
                if qlen[u] >= ue_queue_depth:
                    backpressure += 1
                    break
                qlen[u] += 1
                cursor += 1
                issued += 1
            cursors[pe] = cursor
        occupied = qlen > 0
        delivered += int(np.count_nonzero(occupied))
        qlen[occupied] -= 1
        occupancy = int(qlen.max()) if num_ues else 0
        if occupancy > max_occupancy:
            max_occupancy = occupancy
        cycle += 1
    return MicroScatterResult(
        cycles=cycle,
        results_delivered=delivered,
        backpressure_events=backpressure,
        max_ue_queue_occupancy=max_occupancy,
    )


def simulate_scatter_microarch_vectorized(
    pe_streams: Sequence[np.ndarray],
    config: GraphDynSConfig = DEFAULT_CONFIG,
    ue_queue_depth: int = 4,
    max_cycles: int = 10_000_000,
    event_engine: str = "python",
) -> MicroScatterResult:
    """Vectorized, bit-identical ``simulate_scatter_microarch``.

    ``event_engine`` selects the exact-replay implementation used when
    back-pressure invalidates the closed-form schedule: ``"python"`` (the
    loop below) or ``"compiled"`` (the native event loop of the compiled
    kernel tier, falling back to Python with a warn-once
    :class:`~repro.kernels.tiers.KernelFallbackWarning` when no provider
    is available).  Taking the fallback at all is itself reported once
    per process via the same warning type -- the closed form is the fast
    path and silently losing it used to be invisible.
    """
    num_ues = config.num_ues
    n_simt = config.n_simt
    streams = [np.asarray(s, dtype=np.int64) for s in pe_streams]
    total = int(sum(s.size for s in streams))
    if total == 0:
        return MicroScatterResult(
            cycles=0,
            results_delivered=0,
            backpressure_events=0,
            max_ue_queue_occupancy=0,
        )
    ue = np.concatenate([s % num_ues for s in streams])
    arrival = np.concatenate(
        [np.arange(s.size, dtype=np.int64) // n_simt for s in streams]
    )
    closed = _drain_closed_form(ue, arrival, num_ues, ue_queue_depth)
    if closed is not None:
        cycles, max_occupancy = closed
        if cycles > max_cycles:
            raise RuntimeError("micro-model exceeded cycle budget")
        return MicroScatterResult(
            cycles=cycles,
            results_delivered=total,
            backpressure_events=0,
            max_ue_queue_occupancy=max_occupancy,
        )
    from .tiers import warn_fallback

    warn_fallback(
        "micro_drain:closed-form-invalid",
        "Scatter micro-model: FIFO back-pressure invalidated the "
        "closed-form drain schedule; replaying the stream through the "
        "exact event loop instead. Results are identical; only the "
        "performance tier changed.",
    )
    if event_engine == "compiled":
        from . import compiled as _compiled

        if _compiled.get_provider() is not None:
            return _compiled.micro_drain_compiled(
                streams, num_ues, n_simt, ue_queue_depth, max_cycles
            )
        warn_fallback(
            "micro_drain:compiled-unavailable",
            "compiled micro-drain event loop requested but no native "
            "provider is available; using the Python event loop. "
            "Results are identical.",
        )
    offsets = np.cumsum([0] + [s.size for s in streams])
    ue_streams = [
        ue[offsets[i]:offsets[i + 1]].tolist() for i in range(len(streams))
    ]
    return _drain_event_loop(
        ue_streams, num_ues, n_simt, ue_queue_depth, total, max_cycles
    )
