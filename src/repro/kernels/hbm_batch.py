"""Batched HBM access-pattern timing.

:meth:`repro.memory.hbm.HBMModel.pattern_cycles` prices one
:class:`~repro.memory.request.AccessPattern` with a handful of scalar
float operations; servicing a batch one pattern at a time makes the
Python call overhead the dominant cost when timing models emit many
patterns per phase.  :func:`pattern_cycles_batch` evaluates the same
expression -- identical operations in identical order, so identical
IEEE-754 results -- over whole arrays, and :func:`batch_cycles_sum`
accumulates them in the same left-to-right order the scalar ``service``
loop used (``cumsum`` is sequential, so the final partial sum is
bit-identical to ``cycles += pattern_cycles(p)``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["pattern_cycles_batch", "batch_cycles_sum"]


def pattern_cycles_batch(
    config, total_bytes: np.ndarray, run_bytes: np.ndarray
) -> np.ndarray:
    """Per-pattern service cycles on an otherwise idle memory.

    Array form of :meth:`HBMModel.pattern_cycles`; ``config`` is an
    :class:`~repro.memory.hbm.HBMConfig`.
    """
    total = np.asarray(total_bytes, dtype=np.float64)
    run = np.maximum(np.asarray(run_bytes, dtype=np.float64), 1.0)
    padded_run = np.maximum(run, float(config.min_access_bytes))
    num_runs = np.maximum(1.0, total / run)
    padded_bytes = num_runs * padded_run

    transfer_cycles = padded_bytes / config.peak_bytes_per_cycle
    rows_per_run = np.maximum(1.0, padded_run / config.row_bytes)
    total_misses = num_runs * rows_per_run
    overlap = config.bank_parallelism * config.num_channels
    miss_cycles = total_misses * config.row_miss_cycles / overlap
    cycles = transfer_cycles + miss_cycles
    cycles[total == 0] = 0.0
    return cycles


def batch_cycles_sum(cycles: np.ndarray) -> float:
    """Left-to-right float accumulation (matches the scalar loop)."""
    cycles = np.asarray(cycles, dtype=np.float64)
    if cycles.size == 0:
        return 0.0
    return float(np.cumsum(cycles)[-1])
