"""cffi + system-C-compiler provider for the compiled kernel tier.

Builds a small C extension at first use (API mode, ``-O2``, no
fast-math so IEEE-double semantics match the scalar references bit for
bit) and caches the resulting ``.so`` on disk keyed by a content hash of
the C source, so every later process pays only a dlopen.  The C loops
are line-for-line translations of :mod:`repro.kernels._kernels_py` --
read that module for the commented reference semantics.

Cache location: ``$REPRO_COMPILE_CACHE`` if set, else
``~/.cache/repro/compiled``.  Builds land in a per-pid scratch dir and
are moved into place with ``os.replace`` so concurrent builders
(process-pool workers, parallel test runs) race benignly.

Import of this module never raises on a missing compiler/cffi -- call
:func:`load` and handle ``None``; the tier registry turns that into a
warn-once fallback.
"""

from __future__ import annotations

import glob
import hashlib
import importlib.util
import os
import shutil
import sys
from typing import Optional

_CDEF = """
long long repro_stalling_reduce(
    const long long *addrs, const double *values, long long n,
    const long long *vb_addrs, const double *vb_vals, long long n_vb,
    int opcode, double identity,
    long long *out_addrs, double *out_vals,
    long long *out_cycles, long long *out_stalls);
int repro_micro_drain(
    const long long *ue, long long total,
    const long long *offsets, long long n_streams,
    long long n_simt, long long num_ues, long long depth,
    long long max_cycles, long long *out);
long long repro_alg2_scatter(
    const long long *offsets, const long long *edges, const double *weights,
    const long long *active, long long n_active,
    const double *prop, double *t_prop,
    int pe_kind, int fold_kind);
long long repro_alg2_apply(
    double *prop, const double *t_prop, const double *c_prop, long long n,
    int apply_kind, double alpha, double beta, unsigned char *changed_mask);
"""

_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>

/* Open-addressing table slot states. */
#define SLOT_EMPTY 0u
#define SLOT_SEEDED 1u
#define SLOT_TOUCHED 2u

long long repro_stalling_reduce(
    const long long *addrs, const double *values, long long n,
    const long long *vb_addrs, const double *vb_vals, long long n_vb,
    int opcode, double identity,
    long long *out_addrs, double *out_vals,
    long long *out_cycles, long long *out_stalls)
{
    long long cap = 8;
    while (cap < 2 * (n + n_vb) + 2) cap <<= 1;
    long long mask = cap - 1;
    long long *keys = (long long *)malloc((size_t)cap * sizeof(long long));
    unsigned char *state = (unsigned char *)calloc((size_t)cap, 1);
    double *acc = (double *)malloc((size_t)cap * sizeof(double));
    long long *last_issue = (long long *)calloc((size_t)cap, sizeof(long long));
    long long *out_pos = (long long *)malloc((size_t)cap * sizeof(long long));
    if (!keys || !state || !acc || !last_issue || !out_pos) {
        free(keys); free(state); free(acc); free(last_issue); free(out_pos);
        return -1;
    }

    for (long long i = 0; i < n_vb; i++) {
        long long a = vb_addrs[i];
        long long h = (a ^ (a >> 16)) & mask;
        for (;;) {
            if (state[h] == SLOT_EMPTY) {
                keys[h] = a; acc[h] = vb_vals[i]; state[h] = SLOT_SEEDED;
                break;
            }
            if (keys[h] == a) { acc[h] = vb_vals[i]; break; }
            h = (h + 1) & mask;
        }
    }

    long long cycles = 0, stalls = 0, n_out = 0;
    for (long long i = 0; i < n; i++) {
        long long a = addrs[i];
        long long h = (a ^ (a >> 16)) & mask;
        for (;;) {
            if (state[h] == SLOT_EMPTY) {
                keys[h] = a; acc[h] = identity; state[h] = SLOT_TOUCHED;
                out_addrs[n_out] = a; out_pos[h] = n_out; n_out++;
                break;
            }
            if (keys[h] == a) {
                if (state[h] == SLOT_SEEDED) {
                    state[h] = SLOT_TOUCHED;
                    out_addrs[n_out] = a; out_pos[h] = n_out; n_out++;
                }
                break;
            }
            h = (h + 1) & mask;
        }
        long long li = last_issue[h];
        if (li > cycles) { stalls += li - cycles; cycles = li; }
        cycles += 1;
        last_issue[h] = cycles + 2;  /* REUSE_BUBBLE */
        double v = values[i];
        double cur = acc[h];
        if (opcode == 0)      { if (v < cur) acc[h] = v; }
        else if (opcode == 1) { if (v > cur) acc[h] = v; }
        else                  { acc[h] = cur + v; }
    }
    if (n > 0) cycles += 2;  /* PIPELINE_DEPTH - 1 */

    for (long long h = 0; h < cap; h++)
        if (state[h] == SLOT_TOUCHED) out_vals[out_pos[h]] = acc[h];

    free(keys); free(state); free(acc); free(last_issue); free(out_pos);
    *out_cycles = cycles;
    *out_stalls = stalls;
    return n_out;
}

int repro_micro_drain(
    const long long *ue, long long total,
    const long long *offsets, long long n_streams,
    long long n_simt, long long num_ues, long long depth,
    long long max_cycles, long long *out)
{
    long long *qlen = (long long *)calloc((size_t)(num_ues > 0 ? num_ues : 1),
                                          sizeof(long long));
    long long *cursors = (long long *)malloc(
        (size_t)(n_streams > 0 ? n_streams : 1) * sizeof(long long));
    if (!qlen || !cursors) { free(qlen); free(cursors); return -1; }
    for (long long pe = 0; pe < n_streams; pe++) cursors[pe] = offsets[pe];

    long long delivered = 0, backpressure = 0, max_occ = 0, cycle = 0;
    while (delivered < total) {
        if (cycle >= max_cycles) { free(qlen); free(cursors); return 1; }
        for (long long pe = 0; pe < n_streams; pe++) {
            long long cursor = cursors[pe];
            long long end = offsets[pe + 1];
            long long issued = 0;
            while (issued < n_simt && cursor < end) {
                long long u = ue[cursor];
                if (qlen[u] >= depth) { backpressure++; break; }
                qlen[u]++; cursor++; issued++;
            }
            cursors[pe] = cursor;
        }
        long long occ = 0;
        for (long long u = 0; u < num_ues; u++) {
            if (qlen[u] > 0) { qlen[u]--; delivered++; }
            if (qlen[u] > occ) occ = qlen[u];
        }
        if (occ > max_occ) max_occ = occ;
        cycle++;
    }
    out[0] = cycle; out[1] = delivered; out[2] = backpressure; out[3] = max_occ;
    free(qlen); free(cursors);
    return 0;
}

long long repro_alg2_scatter(
    const long long *offsets, const long long *edges, const double *weights,
    const long long *active, long long n_active,
    const double *prop, double *t_prop,
    int pe_kind, int fold_kind)
{
    long long edges_processed = 0;
    for (long long k = 0; k < n_active; k++) {
        long long u = active[k];
        long long lo = offsets[u];
        long long hi = offsets[u + 1];
        double up = prop[u];
        for (long long idx = lo; idx < hi; idx++) {
            double w = weights[idx];
            double res;
            if (pe_kind == 0)      res = up + 1.0;
            else if (pe_kind == 1) res = up + w;
            else if (pe_kind == 2) res = up;
            else                   res = (up < w) ? up : w;
            long long v = edges[idx];
            double cur = t_prop[v];
            if (fold_kind == 0)      { if (res < cur) t_prop[v] = res; }
            else if (fold_kind == 1) { if (res > cur) t_prop[v] = res; }
            else                     { t_prop[v] = cur + res; }
        }
        edges_processed += hi - lo;
    }
    return edges_processed;
}

long long repro_alg2_apply(
    double *prop, const double *t_prop, const double *c_prop, long long n,
    int apply_kind, double alpha, double beta, unsigned char *changed_mask)
{
    long long changed = 0;
    for (long long i = 0; i < n; i++) {
        double p = prop[i];
        double t = t_prop[i];
        double a;
        if (apply_kind == 0)      a = (p < t) ? p : t;
        else if (apply_kind == 1) a = (p > t) ? p : t;
        else {
            double c = c_prop[i];
            double d = (c > 1.0) ? c : 1.0;
            a = (alpha + beta * t) / d;
        }
        if (p != a) { prop[i] = a; changed_mask[i] = 1; changed++; }
        else        { changed_mask[i] = 0; }
    }
    return changed;
}
"""


def _cache_root() -> str:
    root = os.environ.get("REPRO_COMPILE_CACHE")
    if not root:
        root = os.path.join(os.path.expanduser("~"), ".cache", "repro", "compiled")
    return root


def _module_name() -> str:
    digest = hashlib.sha256((_CDEF + _SOURCE).encode("utf-8")).hexdigest()[:12]
    abi = "cp{}{}".format(sys.version_info[0], sys.version_info[1])
    return "_repro_ck_{}_{}".format(abi, digest)


def _find_built(root: str, modname: str) -> Optional[str]:
    hits = sorted(glob.glob(os.path.join(root, modname + "*.so")))
    return hits[0] if hits else None


def _build(root: str, modname: str) -> str:
    import cffi

    ffibuilder = cffi.FFI()
    ffibuilder.cdef(_CDEF)
    ffibuilder.set_source(
        modname,
        _SOURCE,
        extra_compile_args=["-O2"],
    )
    scratch = os.path.join(root, "build-{}".format(os.getpid()))
    os.makedirs(scratch, exist_ok=True)
    try:
        built = ffibuilder.compile(tmpdir=scratch, verbose=False)
        final = os.path.join(root, os.path.basename(built))
        os.replace(built, final)
        return final
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _load_so(modname: str, path: str):
    spec = importlib.util.spec_from_file_location(modname, path)
    if spec is None or spec.loader is None:
        raise ImportError("cannot load compiled kernel module at {}".format(path))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def load():
    """Build (or reuse) and load the C kernel module.

    Returns ``(ffi, lib)`` on success, ``None`` when cffi or a working C
    compiler is unavailable.  Never raises for the expected "no
    toolchain" failure modes -- the tier registry reports those as a
    fallback, not an error.
    """
    try:
        import cffi  # noqa: F401
    except Exception:
        return None
    root = _cache_root()
    modname = _module_name()
    try:
        os.makedirs(root, exist_ok=True)
        path = _find_built(root, modname)
        if path is None:
            _build(root, modname)
            path = _find_built(root, modname)
        if path is None:
            return None
        module = _load_so(modname, path)
        return module.ffi, module.lib
    except Exception:
        return None
