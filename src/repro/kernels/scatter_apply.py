"""Batched rendering of Algorithm 2's Scatter/Apply processing stages.

:func:`repro.vcpm.run_optimized` walks dispatched edge lists one edge at
a time -- a faithful but interpreter-bound reading of the pseudocode.
Because the Dispatching stage knows every ``(offset, edgeCnt)`` before
processing begins (the paper's decoupling insight), the entire Scatter
processing stage of an iteration is expressible as one gather +
``Process_Edge`` over arrays + an in-order ``ufunc.at`` fold, and the
Apply stage as one array ``Apply`` + ``flatnonzero``.

Per-edge semantics are preserved exactly:

* ``gather_edge_indices`` expands edges in the same traversal order the
  scalar loop uses, so SUM reductions accumulate in the identical order
  (``ufunc.at`` applies repeated destinations element by element);
* ``Process_Edge``/``Apply`` are elementwise ufunc expressions, so the
  batched evaluation produces bit-identical floats to the per-edge
  size-1-array calls;
* dispatch counters (scatter records, apply vertex-list workloads,
  edges processed) follow the same arithmetic.

``tests/test_kernels_equivalence.py`` asserts the resulting
:class:`~repro.vcpm.optimized.OptimizedRunResult` is field-for-field
identical to the scalar rendering on random graphs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..vcpm.engine import gather_edge_indices
from ..vcpm.spec import AlgorithmSpec

__all__ = ["run_optimized_batched"]


def run_optimized_batched(
    graph: CSRGraph,
    spec: AlgorithmSpec,
    source: Optional[int] = 0,
    max_iterations: Optional[int] = None,
    v_list_size: int = 8,
    pr_tolerance: float = 1e-7,
) -> "OptimizedRunResult":
    """Execute Algorithm 2 with batched processing stages.

    Drop-in replacement for ``run_optimized(..., kernel="scalar")``:
    same arguments, bit-identical :class:`OptimizedRunResult`.
    """
    from ..vcpm.optimized import OptimizedRunResult

    if v_list_size < 1:
        raise ValueError("v_list_size must be >= 1")
    num_vertices = graph.num_vertices
    if max_iterations is None:
        max_iterations = spec.default_max_iterations
    if not spec.needs_source:
        source = None

    prop = spec.initial_prop(num_vertices, source)
    t_prop = spec.initial_tprop(num_vertices)
    deg = graph.out_degree().astype(np.float64)
    c_prop = deg if spec.uses_degree_cprop else np.zeros(num_vertices)
    if spec.uses_degree_cprop and num_vertices:
        prop = prop / np.maximum(c_prop, 1.0)

    if spec.all_vertices_active_initially:
        active_ids = np.arange(num_vertices, dtype=np.int64)
    elif source is not None and num_vertices:
        active_ids = np.asarray([source], dtype=np.int64)
    else:
        active_ids = np.zeros(0, dtype=np.int64)

    # Apply's dispatching stage always tiles all vertices into
    # ceil(V / vListSize) vertex-list workloads.
    workloads_per_iteration = -(-num_vertices // v_list_size)

    scatter_dispatches = 0
    apply_dispatches = 0
    edges_processed = 0
    converged = False
    completed_iterations = 0

    for _ in range(max_iterations):
        if active_ids.size == 0:
            converged = True
            break

        # --- Scatter: dispatching stage (counts only; the per-vertex
        # (prop, offset, edgeCnt) records are implicit in the gather) ---
        scatter_dispatches += int(active_ids.size)

        # --- Scatter: processing stage, batched (lines 4-7) ---
        edge_idx = gather_edge_indices(graph.offsets, active_ids)
        if edge_idx.size:
            degrees = (
                graph.offsets[active_ids + 1] - graph.offsets[active_ids]
            )
            u_prop = np.repeat(prop[active_ids], degrees)
            edge_dst = graph.edges[edge_idx]
            edge_w = graph.weights[edge_idx].astype(np.float64)
            results = spec.process_edge(u_prop, edge_w)
            spec.reduce_op.ufunc.at(t_prop, edge_dst, results)
        edges_processed += int(edge_idx.size)

        # --- Apply: dispatching stage ---
        apply_dispatches += workloads_per_iteration

        # --- Apply: processing stage, batched (lines 11-18) ---
        old_prop = prop.copy()
        apply_res = spec.apply(prop, t_prop, c_prop)
        activated_mask = apply_res != prop
        prop = np.where(activated_mask, apply_res, prop)

        completed_iterations += 1
        if spec.resets_tprop_each_iteration:
            t_prop = spec.initial_tprop(num_vertices)
            delta = float(np.abs(prop - old_prop).sum())
            if delta < pr_tolerance:
                converged = True
                break
            active_ids = np.arange(num_vertices, dtype=np.int64)
        else:
            active_ids = np.flatnonzero(activated_mask)
            if active_ids.size == 0:
                converged = True
                break

    return OptimizedRunResult(
        properties=prop,
        num_iterations=completed_iterations,
        converged=converged,
        scatter_dispatches=scatter_dispatches,
        apply_dispatches=apply_dispatches,
        edges_processed=edges_processed,
    )
