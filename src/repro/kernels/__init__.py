"""Vectorized and compiled simulation kernels.

Every timing-side hot path in the reproduction has up to three
renderings, organized as the tier registry of :mod:`repro.kernels.tiers`
(``scalar`` -> ``vectorized`` -> ``compiled``):

* a **retained scalar reference** that follows the paper's pseudocode or
  pipeline diagram cycle by cycle (``repro.core.reduce_pipeline``,
  ``repro.vcpm.optimized``, ``repro.graphdyns.micro``,
  ``HBMModel.service_scalar``),
* a **vectorized kernel** in this package that computes the identical
  result with numpy array operations -- closed-form cycle models, grouped
  ``ufunc.at`` folds, and batched pattern servicing, and
* an optional **compiled kernel** (:mod:`repro.kernels.compiled`) running
  the three remaining interpreter-bound loops -- the stalling reduce
  recurrence, the exact Scatter drain event loop, and per-cell
  Algorithm 2 iteration -- as native code (numba ``@njit`` or a cached
  cffi/C extension), with warn-once graceful fallback when no native
  provider exists.

The contract is *bit-exact equivalence*: cycles, stalls, properties and
queue occupancies from any kernel tier must equal the scalar rendering on
every input (``tests/test_kernels_equivalence.py`` enforces this with
property-based streams and graphs).  The kernels exist purely for speed
-- ``benchmarks/bench_kernels.py`` records the scalar/vectorized/compiled
gaps in ``BENCH_kernels.json`` -- so paper-scale proxies stop being
bounded by Python interpreter throughput.
"""

from .hbm_batch import batch_cycles_sum, pattern_cycles_batch
from .micro_drain import simulate_scatter_microarch_vectorized
from .reduce import (
    fold_ops,
    split_ops,
    stalling_cycle_model,
    stalling_run,
    zero_stall_run,
)
from .scatter_apply import run_optimized_batched
from .tiers import (
    TIERS,
    KernelFallbackWarning,
    active_tier,
    compiled_available,
    compiled_provider_name,
    resolve_tier,
    use_tier,
    warm_compile,
)

__all__ = [
    "batch_cycles_sum",
    "pattern_cycles_batch",
    "simulate_scatter_microarch_vectorized",
    "fold_ops",
    "split_ops",
    "stalling_cycle_model",
    "stalling_run",
    "zero_stall_run",
    "run_optimized_batched",
    "TIERS",
    "KernelFallbackWarning",
    "active_tier",
    "compiled_available",
    "compiled_provider_name",
    "resolve_tier",
    "use_tier",
    "warm_compile",
]
