"""Vectorized simulation kernels.

Every timing-side hot path in the reproduction has two renderings:

* a **retained scalar reference** that follows the paper's pseudocode or
  pipeline diagram cycle by cycle (``repro.core.reduce_pipeline``,
  ``repro.vcpm.optimized``, ``repro.graphdyns.micro``,
  ``HBMModel.service_scalar``), and
* a **vectorized kernel** in this package that computes the identical
  result with numpy array operations -- closed-form cycle models, grouped
  ``ufunc.at`` folds, and batched pattern servicing.

The contract is *bit-exact equivalence*: cycles, stalls, properties and
queue occupancies from a kernel must equal the scalar rendering on every
input (``tests/test_kernels_equivalence.py`` enforces this with
property-based streams and graphs).  The kernels exist purely for speed
-- ``benchmarks/bench_kernels.py`` records the scalar-vs-vectorized gap
in ``BENCH_kernels.json`` -- so paper-scale proxies stop being bounded
by Python interpreter throughput.
"""

from .hbm_batch import batch_cycles_sum, pattern_cycles_batch
from .micro_drain import simulate_scatter_microarch_vectorized
from .reduce import (
    fold_ops,
    split_ops,
    stalling_cycle_model,
    stalling_run,
    zero_stall_run,
)
from .scatter_apply import run_optimized_batched

__all__ = [
    "batch_cycles_sum",
    "pattern_cycles_batch",
    "simulate_scatter_microarch_vectorized",
    "fold_ops",
    "split_ops",
    "stalling_cycle_model",
    "stalling_run",
    "zero_stall_run",
    "run_optimized_batched",
]
