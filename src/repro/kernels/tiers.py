"""Three-level kernel tier registry: ``scalar`` -> ``vectorized`` -> ``compiled``.

Every hot loop in the model ships in up to three implementations that are
bit-identical under the hypothesis equivalence oracle:

* ``scalar`` -- the retained pure-Python references (dataclasses, dicts,
  deques).  Slowest, most readable, the ground truth.
* ``vectorized`` -- the PR 2 numpy closed forms and batched folds.
* ``compiled`` -- native-code kernels (numba ``@njit`` when importable,
  else a cffi/C extension built on first use; see
  :mod:`repro.kernels.compiled`).  Optional: when no provider works the
  tier degrades to ``vectorized`` with a single
  :class:`KernelFallbackWarning`.

Selection order (first hit wins):

1. an explicit value passed at a call seam (``kernel=``, ``engine=``,
   ``--kernel-tier``, ``RunRequest.kernel_tier``);
2. the ambient tier set by :func:`use_tier` (the harness wraps each cell
   execution in this, so shard workers and backends inherit it);
3. the ``REPRO_KERNEL_TIER`` environment variable;
4. ``auto``: ``compiled`` when a provider is available, else
   ``vectorized``.

The tier is an *execution strategy*, never part of a cache key: compiled
and interpreted runs share cache entries byte for byte (same precedent as
``storage``/``shards`` in PR 5).
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import threading
from typing import Iterator, Optional, Set

TIERS = ("scalar", "vectorized", "compiled")
AUTO = "auto"
ENV_TIER = "REPRO_KERNEL_TIER"

# Aliases accepted at the public seams for backwards compatibility with
# the pre-tier kernel/engine vocabularies.
_ALIASES = {
    "batched": "vectorized",  # run_optimized(kernel="batched")
    "event": "scalar",  # simulate_scatter_microarch(engine="event")
}


class KernelFallbackWarning(RuntimeWarning):
    """A kernel tier silently downgraded or an exact path replaced a closed form.

    Raised (warn-once per distinct cause) when:

    * the ``compiled`` tier is requested but no provider is available or
      native compilation failed -- execution proceeds on ``vectorized``;
    * a spec/config is outside a kernel's supported envelope (e.g. an
      Algorithm 2 spec without opcode metadata, or FIFO back-pressure
      invalidating the closed-form drain schedule) -- execution proceeds
      on the exact reference path.

    Results are bit-identical either way; the warning only flags that the
    performance tier differs from what was requested or expected.
    """


_warn_lock = threading.Lock()
_warned: Set[str] = set()


def warn_fallback(key: str, message: str) -> None:
    """Emit ``KernelFallbackWarning`` once per distinct ``key`` per process."""
    import warnings

    with _warn_lock:
        if key in _warned:
            return
        _warned.add(key)
    warnings.warn(message, KernelFallbackWarning, stacklevel=3)


def reset_fallback_warnings() -> None:
    """Forget which fallbacks already warned (test isolation hook)."""
    with _warn_lock:
        _warned.clear()


_active_tier: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_kernel_tier", default=None
)


def normalize_tier(value: Optional[str]) -> Optional[str]:
    """Map aliases onto canonical tier names; validate; pass through None/auto."""
    if value is None:
        return None
    tier = _ALIASES.get(value, value)
    if tier != AUTO and tier not in TIERS:
        raise ValueError(
            "unknown kernel tier {!r}; expected one of {} or {!r}".format(
                value, "/".join(TIERS), AUTO
            )
        )
    return tier


def resolve_tier(requested: Optional[str] = None) -> str:
    """Resolve a tier request to a concrete, runnable tier.

    ``requested`` may be a tier name, an alias, ``"auto"``, ``""`` or
    ``None``.  Empty/None consults the ambient tier (:func:`use_tier`),
    then ``$REPRO_KERNEL_TIER``, then falls back to ``auto``.  ``auto``
    resolves to ``compiled`` when a provider is loadable, else
    ``vectorized``.  An explicit ``compiled`` request without a provider
    warns once and resolves to ``vectorized``.
    """
    tier = normalize_tier(requested or None)
    if tier is None:
        tier = normalize_tier(_active_tier.get() or None)
    if tier is None:
        tier = normalize_tier(os.environ.get(ENV_TIER) or None) or AUTO
    if tier == AUTO:
        return "compiled" if compiled_available() else "vectorized"
    if tier == "compiled" and not compiled_available():
        warn_fallback(
            "tier:compiled-unavailable",
            "kernel tier 'compiled' requested but no native provider is "
            "available (numba not importable and cffi/C build failed); "
            "falling back to the vectorized tier. Results are identical.",
        )
        return "vectorized"
    return tier


def active_tier() -> str:
    """The concrete tier ambient code should run at (resolves auto/env)."""
    return resolve_tier(None)


def set_active_tier(tier: Optional[str]) -> None:
    """Set the ambient tier for the current context (None clears it)."""
    _active_tier.set(normalize_tier(tier) if tier else None)


@contextlib.contextmanager
def use_tier(tier: Optional[str]) -> Iterator[str]:
    """Scope the ambient kernel tier; yields the concrete resolved tier.

    The harness wraps each cell execution in this so every seam that
    consults :func:`active_tier` (streams pipelines, engine dispatch,
    shard workers) inherits the request's tier without plumbing a
    parameter through every call.
    """
    token = _active_tier.set(normalize_tier(tier) if tier else None)
    try:
        yield resolve_tier(tier)
    finally:
        _active_tier.reset(token)


def compiled_available() -> bool:
    """True when a compiled-tier provider is loaded (or loadable)."""
    from . import compiled

    return compiled.get_provider() is not None


def compiled_provider_name() -> Optional[str]:
    """Name of the active compiled provider (``numba``/``cffi``/``python``)."""
    from . import compiled

    provider = compiled.get_provider()
    return provider.name if provider is not None else None


def compile_seconds() -> Optional[float]:
    """Wall seconds the in-process provider spent loading/JIT-compiling."""
    from . import compiled

    return compiled.load_seconds()


def warm_compile() -> Optional[float]:
    """Eagerly load the compiled provider and record obs instruments.

    Triggers provider selection, native compilation (first process ever)
    or artifact reload (every later process), and a smoke execution of
    each kernel.  Records ``kernels.compile_s`` (gauge) and bumps the
    ``kernels.provider.<name>`` counter on the ambient recorder.  Returns
    the load time in seconds, or ``None`` when no provider is available.
    The daemon calls this at boot so the first request never pays JIT
    latency.
    """
    from ..obs import get_recorder
    from . import compiled

    provider = compiled.get_provider()
    seconds = compiled.load_seconds()
    rec = get_recorder()
    if provider is None:
        rec.counter("kernels.provider.none").add()
        return None
    rec.gauge("kernels.compile_s").set(float(seconds if seconds is not None else 0.0))
    rec.counter("kernels.provider.{}".format(provider.name)).add()
    return seconds
