"""Workload-balanced dispatch (Section 5.1.1) and baseline policies.

The Dispatcher's job: given the active vertices of an iteration -- each
carrying its ``edgeCnt`` thanks to the optimized programming model -- assign
edge work to the 16 Processing Elements so that

* low-degree vertices keep their whole edge list on one PE (processed in a
  batch, cutting scheduling operations ~94%, Fig. 14a), and
* high-degree vertices (``edgeCnt >= eThreshold``) are split into
  ``eThreshold``-sized sub-lists spread across every PE.

For comparison, :func:`hash_dispatch` reproduces Graphicionado's policy
(vertex-hash to pipeline, whole edge list regardless of degree), whose
imbalance the paper quantifies in Section 3.2.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = [
    "DispatchOutcome",
    "balanced_dispatch",
    "hash_dispatch",
    "per_vertex_dispatch_ops",
]


@dataclasses.dataclass
class DispatchOutcome:
    """Result of distributing one iteration's edge work.

    Attributes:
        pe_loads: edges assigned to each PE.
        scheduling_ops: dispatch decisions the DEs performed (one per
            whole-list assignment plus one per split sub-list).
        num_splits: high-degree vertices that were partitioned.
    """

    pe_loads: np.ndarray
    scheduling_ops: int
    num_splits: int

    @property
    def max_load(self) -> int:
        return int(self.pe_loads.max()) if self.pe_loads.size else 0

    @property
    def mean_load(self) -> float:
        return float(self.pe_loads.mean()) if self.pe_loads.size else 0.0

    @property
    def imbalance(self) -> float:
        """Max/mean PE load; 1.0 is perfect balance."""
        mean = self.mean_load
        if mean == 0:
            return 1.0
        return self.max_load / mean

    def normalized_loads(self) -> np.ndarray:
        """Per-PE load normalized to the mean (the Fig. 14b y-axis)."""
        mean = self.mean_load
        if mean == 0:
            return np.ones_like(self.pe_loads, dtype=np.float64)
        return self.pe_loads / mean


def balanced_dispatch(
    degrees: np.ndarray,
    num_pes: int = 16,
    e_threshold: int = 128,
) -> DispatchOutcome:
    """GraphDynS workload-balanced dispatch.

    Vertices with ``edgeCnt < e_threshold`` go whole to the same-numbered PE
    round-robin (DE_i -> PE_i); larger edge lists split into even
    ``e_threshold``-bounded chunks dealt across all PEs.

    Args:
        degrees: ``edgeCnt`` of each active vertex, in dispatch order.
        num_pes: Processing Element count (16 in Table 3).
        e_threshold: split threshold (128 per Section 5.1.3).
    """
    if num_pes < 1:
        raise ValueError("num_pes must be >= 1")
    if e_threshold < 1:
        raise ValueError("e_threshold must be >= 1")
    degrees = np.asarray(degrees, dtype=np.int64)
    if np.any(degrees < 0):
        raise ValueError("degrees must be non-negative")
    if degrees.size == 0:
        return DispatchOutcome(
            pe_loads=np.zeros(num_pes, dtype=np.int64),
            scheduling_ops=0,
            num_splits=0,
        )

    # Each vertex becomes ceil(deg / eThreshold) chunks of (nearly) even
    # size; small vertices are single whole-list chunks.  Chunks stream to
    # PEs with one global round-robin cursor -- DE_i forwarding to PE_i as
    # the active vertices rotate through the DEs -- which keeps remainder
    # chunks from piling onto low-numbered PEs.
    num_chunks = np.maximum(-(-degrees // e_threshold), 1)
    base = degrees // num_chunks
    extra = degrees - base * num_chunks  # first `extra` chunks get +1

    total_chunks = int(num_chunks.sum())
    chunk_sizes = np.repeat(base, num_chunks)
    # Mark the +1 chunks: within each vertex's run, the first `extra`.
    ends = np.cumsum(num_chunks)
    starts = ends - num_chunks
    position_in_run = np.arange(total_chunks, dtype=np.int64) - np.repeat(
        starts, num_chunks
    )
    chunk_sizes = chunk_sizes + (position_in_run < np.repeat(extra, num_chunks))

    pe_ids = np.arange(total_chunks, dtype=np.int64) % num_pes
    loads = np.zeros(num_pes, dtype=np.int64)
    np.add.at(loads, pe_ids, chunk_sizes)

    return DispatchOutcome(
        pe_loads=loads,
        scheduling_ops=total_chunks,
        num_splits=int(np.count_nonzero(num_chunks > 1)),
    )


def hash_dispatch(
    vertex_ids: np.ndarray,
    degrees: np.ndarray,
    num_pes: int = 16,
) -> DispatchOutcome:
    """Graphicionado-style dispatch: whole edge list to ``vid % num_pes``.

    Every *edge* is a scheduling operation in the baseline (the front-end
    streams edges one at a time to the owning pipeline), which is the
    reference point for Fig. 14a's 94% reduction.
    """
    vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
    degrees = np.asarray(degrees, dtype=np.int64)
    if vertex_ids.shape != degrees.shape:
        raise ValueError("vertex_ids and degrees must be parallel")
    loads = np.zeros(num_pes, dtype=np.int64)
    np.add.at(loads, vertex_ids % num_pes, degrees)
    return DispatchOutcome(
        pe_loads=loads,
        scheduling_ops=int(degrees.sum()),
        num_splits=0,
    )


def per_vertex_dispatch_ops(degrees: np.ndarray, e_threshold: int = 128) -> int:
    """Scheduling operations under balanced dispatch, without the loads.

    Cheap closed form used by the timing layer:
    one op per small vertex, ``ceil(deg/eThreshold)`` per large vertex.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    small = degrees < e_threshold
    ops = int(np.count_nonzero(small))
    large = degrees[~small]
    if large.size:
        ops += int((-(-large // e_threshold)).sum())
    return ops
