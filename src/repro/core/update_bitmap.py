"""Ready-to-Update Bitmap (Section 5.3.1).

During the Scatter phase each Reducing Unit marks the vertices whose
temporary property it actually modified; during the Apply phase only marked
work is prefetched and dispatched, eliminating the unnecessary computation
and memory traffic of update irregularity (up to 88% of update operations
for BFS, Fig. 14d).

To keep the hardware cheap, one bit covers a *block* of 256 consecutive
vertices ("we use 1 bit to represent the ready status of 256 consecutive
vertices"): a marked block schedules all 256, so some slack remains -- the
model reproduces that granularity loss exactly.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import numpy as np

__all__ = ["ReadyToUpdateBitmap", "BitmapStats"]


@dataclasses.dataclass(frozen=True)
class BitmapStats:
    """Apply-phase work selected by the bitmap for one iteration."""

    num_vertices: int
    vertices_scheduled: int
    vertices_modified: int
    blocks_set: int
    total_blocks: int

    @property
    def work_reduction(self) -> float:
        """Fraction of Apply work eliminated vs. checking every vertex."""
        if self.num_vertices == 0:
            return 0.0
        return 1.0 - self.vertices_scheduled / self.num_vertices

    @property
    def slack(self) -> int:
        """Scheduled-but-unmodified vertices (block granularity cost)."""
        return self.vertices_scheduled - self.vertices_modified


class ReadyToUpdateBitmap:
    """Block-granular dirty bitmap over the vertex id space."""

    def __init__(self, num_vertices: int, block_size: int = 256) -> None:
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if num_vertices < 0:
            raise ValueError("num_vertices must be >= 0")
        self.num_vertices = num_vertices
        self.block_size = block_size
        self.num_blocks = -(-num_vertices // block_size) if num_vertices else 0
        self._bits = np.zeros(self.num_blocks, dtype=bool)

    def mark(self, vertex_ids: np.ndarray | Iterable[int]) -> None:
        """Set the bit of every block containing a modified vertex."""
        ids = np.asarray(list(vertex_ids) if not isinstance(vertex_ids, np.ndarray) else vertex_ids, dtype=np.int64)
        if ids.size == 0:
            return
        if ids.min() < 0 or ids.max() >= self.num_vertices:
            raise IndexError("vertex id out of range")
        self._bits[np.unique(ids // self.block_size)] = True

    def is_marked(self, vertex_id: int) -> bool:
        """Whether ``vertex_id``'s block is scheduled for update."""
        if not (0 <= vertex_id < self.num_vertices):
            raise IndexError("vertex id out of range")
        return bool(self._bits[vertex_id // self.block_size])

    @property
    def blocks_set(self) -> int:
        return int(np.count_nonzero(self._bits))

    def scheduled_vertices(self) -> np.ndarray:
        """Vertex ids the Apply phase will actually process."""
        blocks = np.flatnonzero(self._bits)
        if blocks.size == 0:
            return np.zeros(0, dtype=np.int64)
        starts = blocks * self.block_size
        ids = (starts[:, None] + np.arange(self.block_size)).ravel()
        return ids[ids < self.num_vertices]

    def stats(self, modified_ids: np.ndarray) -> BitmapStats:
        """Summarize this iteration's selection quality."""
        return BitmapStats(
            num_vertices=self.num_vertices,
            vertices_scheduled=int(self.scheduled_vertices().size),
            vertices_modified=int(np.asarray(modified_ids).size),
            blocks_set=self.blocks_set,
            total_blocks=self.num_blocks,
        )

    def clear(self) -> None:
        """Reset for the next iteration (done as Apply drains)."""
        self._bits[:] = False

    @staticmethod
    def scheduled_count(
        modified_ids: np.ndarray, num_vertices: int, block_size: int = 256
    ) -> int:
        """Closed-form count of scheduled vertices (timing-layer fast path)."""
        ids = np.asarray(modified_ids, dtype=np.int64)
        if ids.size == 0 or num_vertices == 0:
            return 0
        blocks = np.unique(ids // block_size)
        full = int(blocks.size) * block_size
        # The last block may be truncated by the vertex count.
        last_block = num_vertices // block_size
        if blocks.size and blocks[-1] == last_block:
            full -= block_size - (num_vertices - last_block * block_size)
        return min(full, num_vertices)
