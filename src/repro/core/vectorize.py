"""Scalar-to-Vector (S2V) workload vectorization (Section 5.1.2).

Each PE's S2V unit unrolls a dispatched edge (or vertex) list onto the
``nSIMT`` lanes of its SIMT core, and *combines* lists shorter than the lane
count so lanes don't idle.  The functions here compute the resulting lane
occupancy, which the timing layer turns into compute cycles:

* without combining, a 3-edge list occupies a full 8-lane issue slot
  (37.5% efficiency);
* with combining, consecutive short lists share a slot, pushing efficiency
  toward 1.0 -- this is Graphicionado's missing optimization, since its
  single-lane streams have no notion of vector issue at all.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

__all__ = ["VectorizationStats", "vectorize_workloads", "simt_issue_slots"]


@dataclasses.dataclass(frozen=True)
class VectorizationStats:
    """Lane-occupancy outcome of S2V unrolling one batch of lists."""

    issue_slots: int
    total_items: int
    n_simt: int

    @property
    def lane_efficiency(self) -> float:
        """Occupied-lane fraction across all issue slots."""
        if self.issue_slots == 0:
            return 1.0
        return self.total_items / (self.issue_slots * self.n_simt)

    @property
    def compute_cycles(self) -> int:
        """One issue slot per cycle."""
        return self.issue_slots


def vectorize_workloads(
    list_sizes: Sequence[int] | np.ndarray,
    n_simt: int = 8,
    combine_small: bool = True,
) -> VectorizationStats:
    """Unroll workload lists onto SIMT lanes.

    Args:
        list_sizes: element count of each dispatched list (e.g. edge
            sub-list sizes in a PE's workload queue).
        n_simt: SIMT lane count (8 in Section 5.1.3).
        combine_small: merge lists smaller than ``n_simt`` into shared issue
            slots (the optimization of Section 5.1.2); with ``False`` each
            list rounds up to whole slots on its own.
    """
    sizes = np.asarray(list_sizes, dtype=np.int64)
    if np.any(sizes < 0):
        raise ValueError("list sizes must be non-negative")
    total = int(sizes.sum())
    if total == 0:
        return VectorizationStats(issue_slots=0, total_items=0, n_simt=n_simt)
    if combine_small:
        # Large lists issue their full slots; all remainders and small lists
        # pack together into shared slots.
        full_slots = int((sizes // n_simt).sum())
        leftovers = int((sizes % n_simt).sum())
        slots = full_slots + -(-leftovers // n_simt)
    else:
        slots = int((-(-sizes // n_simt)).sum())
    return VectorizationStats(issue_slots=slots, total_items=total, n_simt=n_simt)


def simt_issue_slots(
    total_items: int, lane_efficiency: float, n_simt: int = 8
) -> int:
    """Issue slots needed at a given lane efficiency (closed form).

    Used by timing models that track only aggregate counts.
    """
    if total_items <= 0:
        return 0
    efficiency = min(max(lane_efficiency, 1e-6), 1.0)
    return int(np.ceil(total_items / (n_simt * efficiency)))
