"""GraphDynS core contribution: data-aware dynamic scheduling components."""

from .scheduling import (
    DispatchOutcome,
    balanced_dispatch,
    hash_dispatch,
    per_vertex_dispatch_ops,
)
from .vectorize import VectorizationStats, simt_issue_slots, vectorize_workloads
from .prefetch import (
    ACTIVE_RECORD_BYTES,
    EDGE_BYTES_EXACT,
    EDGE_BYTES_WITH_SRC,
    PrefetchPlan,
    coalesced_run_lengths,
    plan_baseline_fetch,
    plan_exact_prefetch,
)
from .reduce_pipeline import (
    ReduceResult,
    StallingReducePipeline,
    ZeroStallReducePipeline,
    count_raw_conflicts,
)
from .update_bitmap import BitmapStats, ReadyToUpdateBitmap
from .coalesce import ActivationCoalescer, CoalesceStats, coalesced_store_bursts

__all__ = [
    "DispatchOutcome",
    "balanced_dispatch",
    "hash_dispatch",
    "per_vertex_dispatch_ops",
    "VectorizationStats",
    "simt_issue_slots",
    "vectorize_workloads",
    "ACTIVE_RECORD_BYTES",
    "EDGE_BYTES_EXACT",
    "EDGE_BYTES_WITH_SRC",
    "PrefetchPlan",
    "coalesced_run_lengths",
    "plan_baseline_fetch",
    "plan_exact_prefetch",
    "ReduceResult",
    "StallingReducePipeline",
    "ZeroStallReducePipeline",
    "count_raw_conflicts",
    "BitmapStats",
    "ReadyToUpdateBitmap",
    "CoalesceStats",
    "ActivationCoalescer",
    "coalesced_store_bursts",
]
