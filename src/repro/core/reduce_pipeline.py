"""The zero-stall Reduce Pipeline (Section 5.2.3, Fig. 5).

The store-reduce mechanism turns the read-modify-write of ``v.tProp`` into a
store operation routed to the owning Updating Element, whose Reducing Unit
runs a custom three-stage pipeline:

1. **RD**  -- read the old ``tProp`` from the Vertex Buffer; if the op in the
   WB stage targets the same address, take the *returned result* instead.
2. **EXE** -- one-cycle FALU executes the Reduce function; again the WB
   stage's result is forwarded when addresses match.
3. **WB**  -- write the new ``tProp`` back to the Vertex Buffer.

Because consecutive same-address ops are at pipeline distance 1 or 2, the
two forwarding paths cover every read-after-write hazard: the pipeline
accepts one op per cycle, *never stalling*, while remaining sequentially
consistent.  :class:`ZeroStallReducePipeline` is an exact cycle-by-cycle
model; tests prove its output equals the sequential fold on adversarial
streams.

:class:`StallingReducePipeline` models the baseline (Graphicionado) policy:
detect the conflict and bubble until the in-flight op drains -- the source
of the up-to-20% extra execution time the paper attributes to atomics.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..vcpm.spec import ReduceOp

__all__ = [
    "ReduceResult",
    "ZeroStallReducePipeline",
    "StallingReducePipeline",
    "count_raw_conflicts",
]


@dataclasses.dataclass
class ReduceResult:
    """Outcome of draining one op stream through a reduce pipeline."""

    cycles: int
    ops: int
    stall_cycles: int
    vb: Dict[int, float]

    @property
    def throughput(self) -> float:
        """Ops per cycle (1.0 means zero stalls)."""
        if self.cycles == 0:
            return 1.0
        return self.ops / self.cycles


class ZeroStallReducePipeline:
    """Exact model of the forwarding pipeline of Fig. 5."""

    DEPTH = 3  # RD, EXE, WB

    def __init__(self, reduce_op: ReduceOp, identity: Optional[float] = None) -> None:
        self.reduce_op = reduce_op
        self.identity = reduce_op.identity if identity is None else identity

    def run(
        self,
        ops: Sequence[Tuple[int, float]],
        vb: Optional[Dict[int, float]] = None,
    ) -> ReduceResult:
        """Stream ``(address, value)`` store-reduce ops, one per cycle.

        Args:
            ops: the op stream in program order.
            vb: initial Vertex Buffer contents; missing addresses read the
                reduce identity.

        Returns:
            Final VB state and cycle count ``len(ops) + DEPTH - 1`` -- the
            pipeline never stalls.
        """
        vb = dict(vb) if vb else {}
        n = len(ops)
        # operand1 captured at RD, possibly overridden by forwarding at EXE.
        rd_operand: List[float] = [0.0] * n
        results: List[float] = [0.0] * n

        total_cycles = n + self.DEPTH - 1 if n else 0
        for cycle in range(total_cycles):
            i_rd = cycle
            i_exe = cycle - 1
            i_wb = cycle - 2

            # WB stage writes first and exposes its (addr, result) for
            # same-cycle forwarding.
            wb_addr = wb_result = None
            if 0 <= i_wb < n:
                wb_addr = ops[i_wb][0]
                wb_result = results[i_wb]
                vb[wb_addr] = wb_result

            # EXE stage: forward WB's result when addresses collide
            # (covers back-to-back same-address ops).
            if 0 <= i_exe < n:
                addr, value = ops[i_exe]
                operand1 = rd_operand[i_exe]
                if wb_addr is not None and addr == wb_addr:
                    operand1 = wb_result  # type: ignore[assignment]
                results[i_exe] = self.reduce_op.scalar(operand1, value)

            # RD stage: read VB, or take WB's result on address match
            # (covers distance-2 same-address ops).
            if 0 <= i_rd < n:
                addr, _ = ops[i_rd]
                if wb_addr is not None and addr == wb_addr:
                    rd_operand[i_rd] = wb_result  # type: ignore[assignment]
                else:
                    rd_operand[i_rd] = vb.get(addr, self.identity)

        return ReduceResult(
            cycles=total_cycles, ops=n, stall_cycles=0, vb=vb
        )


class StallingReducePipeline:
    """Baseline: stall on detected contention instead of forwarding.

    An op may not enter the pipeline while an in-flight op targets the same
    address; each conflict bubbles until the offender's write-back
    completes.  No forwarding paths exist, so correctness relies on the
    stalls.
    """

    DEPTH = 3

    def __init__(self, reduce_op: ReduceOp, identity: Optional[float] = None) -> None:
        self.reduce_op = reduce_op
        self.identity = reduce_op.identity if identity is None else identity

    def run(
        self,
        ops: Sequence[Tuple[int, float]],
        vb: Optional[Dict[int, float]] = None,
    ) -> ReduceResult:
        """Stream ops with stall-on-conflict issue logic.

        An op to address ``a`` issued at cycle ``t`` occupies EXE then WB
        and has written back once two more pipeline advances complete, so
        the next op to ``a`` may not issue before cycle ``t + 2``.  A
        last-issue-cycle map per address therefore replaces scanning the
        in-flight slots (the former ``while any(...)`` walk over the
        pipeline depth): the bubble count is just the distance still
        missing to that threshold.  Retired writes land in issue order,
        so the Vertex Buffer outcome is the plain sequential fold.
        """
        vb = dict(vb) if vb else {}
        last_issue: Dict[int, int] = {}
        cycles = 0
        stalls = 0

        for addr, value in ops:
            earliest = last_issue.get(addr)
            if earliest is not None and earliest > cycles:
                stalls += earliest - cycles  # bubble until WB completes
                cycles = earliest
            cycles += 1  # issue consumes one pipeline advance
            last_issue[addr] = cycles + 2
            vb[addr] = self.reduce_op.scalar(
                vb.get(addr, self.identity), value
            )

        if ops:
            cycles += self.DEPTH - 1  # drain EXE and WB of the last op

        return ReduceResult(cycles=cycles, ops=len(ops), stall_cycles=stalls, vb=vb)


def count_raw_conflicts(dst: np.ndarray, depth: int = 2) -> int:
    """Read-after-write hazards in a destination stream (vectorized).

    A hazard exists when an address recurs within ``depth`` positions -- the
    window during which a previous op to that address is still in flight.
    Used by the timing layer to estimate baseline atomic stalls without
    replaying the full pipeline.
    """
    dst = np.asarray(dst)
    if dst.size < 2 or depth < 1:
        return 0
    conflicts = 0
    for lag in range(1, min(depth, dst.size - 1) + 1):
        conflicts += int(np.count_nonzero(dst[lag:] == dst[:-lag]))
    return conflicts
