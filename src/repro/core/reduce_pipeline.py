"""The zero-stall Reduce Pipeline (Section 5.2.3, Fig. 5).

The store-reduce mechanism turns the read-modify-write of ``v.tProp`` into a
store operation routed to the owning Updating Element, whose Reducing Unit
runs a custom three-stage pipeline:

1. **RD**  -- read the old ``tProp`` from the Vertex Buffer; if the op in the
   WB stage targets the same address, take the *returned result* instead.
2. **EXE** -- one-cycle FALU executes the Reduce function; again the WB
   stage's result is forwarded when addresses match.
3. **WB**  -- write the new ``tProp`` back to the Vertex Buffer.

Because consecutive same-address ops are at pipeline distance 1 or 2, the
two forwarding paths cover every read-after-write hazard: the pipeline
accepts one op per cycle, *never stalling*, while remaining sequentially
consistent.  :class:`ZeroStallReducePipeline` is an exact cycle-by-cycle
model; tests prove its output equals the sequential fold on adversarial
streams.

:class:`StallingReducePipeline` models the baseline (Graphicionado) policy:
detect the conflict and bubble until the in-flight op drains -- the source
of the up-to-20% extra execution time the paper attributes to atomics.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..vcpm.spec import ReduceOp

__all__ = [
    "ReduceResult",
    "ZeroStallReducePipeline",
    "StallingReducePipeline",
    "count_raw_conflicts",
]


@dataclasses.dataclass
class ReduceResult:
    """Outcome of draining one op stream through a reduce pipeline."""

    cycles: int
    ops: int
    stall_cycles: int
    vb: Dict[int, float]

    @property
    def throughput(self) -> float:
        """Ops per cycle (1.0 means zero stalls)."""
        if self.cycles == 0:
            return 1.0
        return self.ops / self.cycles


class ZeroStallReducePipeline:
    """Exact model of the forwarding pipeline of Fig. 5."""

    DEPTH = 3  # RD, EXE, WB

    def __init__(self, reduce_op: ReduceOp, identity: Optional[float] = None) -> None:
        self.reduce_op = reduce_op
        self.identity = reduce_op.identity if identity is None else identity

    def run(
        self,
        ops: Sequence[Tuple[int, float]],
        vb: Optional[Dict[int, float]] = None,
    ) -> ReduceResult:
        """Stream ``(address, value)`` store-reduce ops, one per cycle.

        Args:
            ops: the op stream in program order.
            vb: initial Vertex Buffer contents; missing addresses read the
                reduce identity.

        Returns:
            Final VB state and cycle count ``len(ops) + DEPTH - 1`` -- the
            pipeline never stalls.
        """
        vb = dict(vb) if vb else {}
        n = len(ops)
        # operand1 captured at RD, possibly overridden by forwarding at EXE.
        rd_operand: List[float] = [0.0] * n
        results: List[float] = [0.0] * n

        total_cycles = n + self.DEPTH - 1 if n else 0
        for cycle in range(total_cycles):
            i_rd = cycle
            i_exe = cycle - 1
            i_wb = cycle - 2

            # WB stage writes first and exposes its (addr, result) for
            # same-cycle forwarding.
            wb_addr = wb_result = None
            if 0 <= i_wb < n:
                wb_addr = ops[i_wb][0]
                wb_result = results[i_wb]
                vb[wb_addr] = wb_result

            # EXE stage: forward WB's result when addresses collide
            # (covers back-to-back same-address ops).
            if 0 <= i_exe < n:
                addr, value = ops[i_exe]
                operand1 = rd_operand[i_exe]
                if wb_addr is not None and addr == wb_addr:
                    operand1 = wb_result  # type: ignore[assignment]
                results[i_exe] = self.reduce_op.scalar(operand1, value)

            # RD stage: read VB, or take WB's result on address match
            # (covers distance-2 same-address ops).
            if 0 <= i_rd < n:
                addr, _ = ops[i_rd]
                if wb_addr is not None and addr == wb_addr:
                    rd_operand[i_rd] = wb_result  # type: ignore[assignment]
                else:
                    rd_operand[i_rd] = vb.get(addr, self.identity)

        return ReduceResult(
            cycles=total_cycles, ops=n, stall_cycles=0, vb=vb
        )


class StallingReducePipeline:
    """Baseline: stall on detected contention instead of forwarding.

    An op may not enter the pipeline while an in-flight op targets the same
    address; each conflict bubbles until the offender's write-back
    completes.  No forwarding paths exist, so correctness relies on the
    stalls.
    """

    DEPTH = 3

    def __init__(self, reduce_op: ReduceOp, identity: Optional[float] = None) -> None:
        self.reduce_op = reduce_op
        self.identity = reduce_op.identity if identity is None else identity

    def run(
        self,
        ops: Sequence[Tuple[int, float]],
        vb: Optional[Dict[int, float]] = None,
    ) -> ReduceResult:
        """Stream ops with stall-on-conflict issue logic."""
        vb = dict(vb) if vb else {}
        in_flight: List[Optional[Tuple[int, float]]] = [None, None]  # EXE, WB
        cycles = 0
        stalls = 0

        def drain_one() -> None:
            # Advance the pipeline one cycle: WB retires, EXE becomes WB.
            wb = in_flight[1]
            if wb is not None:
                addr, operand_value = wb
                old = vb.get(addr, self.identity)
                vb[addr] = self.reduce_op.scalar(old, operand_value)
            in_flight[1] = in_flight[0]
            in_flight[0] = None

        for addr, value in ops:
            # Stall (bubble) while the address is in flight.
            while any(slot is not None and slot[0] == addr for slot in in_flight):
                drain_one()
                cycles += 1
                stalls += 1
            # Issue: the pipeline advances and the op enters the EXE slot.
            drain_one()
            in_flight[0] = (addr, value)
            cycles += 1

        # Drain remaining stages.
        while any(slot is not None for slot in in_flight):
            drain_one()
            cycles += 1

        return ReduceResult(cycles=cycles, ops=len(ops), stall_cycles=stalls, vb=vb)


def count_raw_conflicts(dst: np.ndarray, depth: int = 2) -> int:
    """Read-after-write hazards in a destination stream (vectorized).

    A hazard exists when an address recurs within ``depth`` positions -- the
    window during which a previous op to that address is still in flight.
    Used by the timing layer to estimate baseline atomic stalls without
    replaying the full pipeline.
    """
    dst = np.asarray(dst)
    if dst.size < 2 or depth < 1:
        return 0
    conflicts = 0
    for lag in range(1, min(depth, dst.size - 1) + 1):
        conflicts += int(np.count_nonzero(dst[lag:] == dst[:-lag]))
    return conflicts
