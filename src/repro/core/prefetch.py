"""Exact prefetch planning (Sections 4.1.2 and 5.2.1).

With ``offset`` and ``edgeCnt`` known for every active vertex, the
Prefetcher can issue *exact* edge requests: no speculative over-fetch, no
``src_vid`` sentinel scanning, and adjacent edge lists coalesce into single
DRAM bursts.  The planner converts an iteration's active-vertex records into
the :class:`~repro.memory.request.AccessPattern` batches the HBM model
consumes.

Two plans are produced by the module:

* :func:`plan_exact_prefetch`   -- GraphDynS: 8-byte edge records
  (dst + weight), runs coalesced across adjacent active vertices.
* :func:`plan_baseline_fetch`   -- Graphicionado: 12-byte edge records
  (src_vid + dst + weight), one random fetch per active vertex plus a
  trailing over-fetch to find the end-of-list sentinel, and a random offset
  lookup to *start* the traversal.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from ..memory.request import AccessPattern, Region

__all__ = [
    "PrefetchPlan",
    "plan_exact_prefetch",
    "plan_baseline_fetch",
    "coalesced_run_lengths",
    "EDGE_BYTES_EXACT",
    "EDGE_BYTES_WITH_SRC",
    "ACTIVE_RECORD_BYTES",
]

#: GraphDynS edge record: destination id (4B) + weight (4B).
EDGE_BYTES_EXACT = 8
#: Graphicionado edge record adds the 4-byte ``src_vid`` tag.
EDGE_BYTES_WITH_SRC = 12
#: Active vertex record of Algorithm 2: prop + offset + edgeCnt (4B each).
ACTIVE_RECORD_BYTES = 12


@dataclasses.dataclass
class PrefetchPlan:
    """The off-chip access batches for one Scatter phase."""

    patterns: List[AccessPattern]
    edge_bytes: int
    coalesced_runs: int

    @property
    def total_bytes(self) -> int:
        return sum(p.total_bytes for p in self.patterns)


def coalesced_run_lengths(
    offsets: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Merge adjacent edge-list extents into maximal contiguous runs.

    Active vertices arrive in ascending id order after the Apply phase, so
    their edge extents ``[offset, offset+edgeCnt)`` are sorted and
    non-overlapping; extents that touch coalesce into one DRAM run -- the
    "coalesce memory accesses to edge data" of Section 5.2.1.

    Returns the run lengths in edges.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    keep = counts > 0
    offsets, counts = offsets[keep], counts[keep]
    if offsets.size == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(offsets, kind="stable")
    offsets, counts = offsets[order], counts[order]
    ends = offsets + counts
    # A new run starts where this extent does not touch the previous end.
    breaks = np.ones(offsets.size, dtype=bool)
    breaks[1:] = offsets[1:] > ends[:-1]
    run_ids = np.cumsum(breaks) - 1
    run_lengths = np.zeros(int(run_ids[-1]) + 1, dtype=np.int64)
    np.add.at(run_lengths, run_ids, counts)
    return run_lengths


def plan_exact_prefetch(
    active_offsets: np.ndarray,
    active_counts: np.ndarray,
    weighted: bool = True,
) -> PrefetchPlan:
    """GraphDynS exact prefetch for one iteration's Scatter phase.

    Streams the active-vertex records sequentially (their addresses are
    known), then fetches exactly the edge bytes indicated by
    ``(offset, edgeCnt)``, coalescing adjacent extents.

    Args:
        active_offsets: ``offset`` of each active vertex.
        active_counts: ``edgeCnt`` of each active vertex.
        weighted: whether edges carry weights (BFS/CC/PR drop the weight
            field, halving edge traffic).
    """
    num_active = int(np.asarray(active_counts).size)
    edge_bytes = EDGE_BYTES_EXACT if weighted else EDGE_BYTES_EXACT // 2
    patterns: List[AccessPattern] = []
    if num_active:
        patterns.append(
            AccessPattern(
                region=Region.ACTIVE_VERTEX,
                total_bytes=num_active * ACTIVE_RECORD_BYTES,
                run_bytes=float(num_active * ACTIVE_RECORD_BYTES),
            )
        )
    runs = coalesced_run_lengths(active_offsets, active_counts)
    total_edges = int(np.asarray(active_counts, dtype=np.int64).sum())
    if total_edges:
        mean_run_bytes = float(runs.mean()) * edge_bytes if runs.size else edge_bytes
        patterns.append(
            AccessPattern(
                region=Region.EDGE,
                total_bytes=total_edges * edge_bytes,
                run_bytes=mean_run_bytes,
            )
        )
    return PrefetchPlan(
        patterns=patterns, edge_bytes=edge_bytes, coalesced_runs=int(runs.size)
    )


def plan_baseline_fetch(
    active_offsets: np.ndarray,
    active_counts: np.ndarray,
    weighted: bool = True,
    offset_cached_on_chip: bool = True,
) -> PrefetchPlan:
    """Graphicionado-style edge fetching for one Scatter phase.

    Differences from the exact plan (Sections 5.2.1 and 7):

    * each edge record carries ``src_vid`` (12 B instead of 8 B; the paper
      measures 1.65x edge traffic);
    * the end of each vertex's list is found by reading *one extra* edge
      record whose ``src_vid`` mismatches;
    * edge lists are fetched per-vertex (no cross-vertex coalescing), so the
      run length is the single list;
    * when the offset array is not cached on-chip, starting each list costs
      a random 4-byte offset lookup.
    """
    active_offsets = np.asarray(active_offsets, dtype=np.int64)
    active_counts = np.asarray(active_counts, dtype=np.int64)
    num_active = int(active_counts.size)
    edge_bytes = EDGE_BYTES_WITH_SRC if weighted else EDGE_BYTES_WITH_SRC - 4
    patterns: List[AccessPattern] = []
    if num_active:
        patterns.append(
            AccessPattern(
                region=Region.ACTIVE_VERTEX,
                total_bytes=num_active * 8,  # (vid, prop)
                run_bytes=float(num_active * 8),
            )
        )
        if not offset_cached_on_chip:
            patterns.append(
                AccessPattern(
                    region=Region.OFFSET,
                    total_bytes=num_active * 4,
                    run_bytes=4.0,
                )
            )
    total_edges = int(active_counts.sum())
    if num_active:
        # +1 sentinel read per active vertex to detect end of list.  The
        # requests are issued per-vertex, but consecutive active vertices
        # own physically adjacent edge lists, so the DRAM row buffer still
        # sees the merged runs (the sentinel overlaps into the next list).
        fetched_edges = total_edges + num_active
        runs = coalesced_run_lengths(active_offsets, active_counts + 1)
        mean_run = float(runs.mean()) if runs.size else 1.0
        patterns.append(
            AccessPattern(
                region=Region.EDGE,
                total_bytes=fetched_edges * edge_bytes,
                run_bytes=mean_run * edge_bytes,
            )
        )
    return PrefetchPlan(
        patterns=patterns, edge_bytes=edge_bytes, coalesced_runs=num_active
    )
