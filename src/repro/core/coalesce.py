"""Coalescing intermittent active-vertex stores (Section 5.3.2).

Whether a vertex is activated is data dependent, so naive hardware writes
active-vertex records to off-chip memory one at a time as the branch fires
-- intermittent, sub-burst stores that waste bandwidth.  The Activating
Unit instead:

* converts the single-path branch into a *conditional store* (no control
  flow in the pipeline), and
* buffers activations in two buffer queues used double-buffer fashion,
  writing a full queue (or the residue at phase end) as one burst.

:class:`ActivationCoalescer` models one AU; the module-level helper
computes the resulting burst sizes for a whole iteration, which the timing
layer converts into run lengths for the HBM model.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from ..sim.queues import DoubleBuffer

__all__ = ["ActivationCoalescer", "CoalesceStats", "coalesced_store_bursts"]


@dataclasses.dataclass
class CoalesceStats:
    """Store behaviour of one AU over one Apply phase."""

    activations: int
    bursts: int
    burst_bytes: List[int]

    @property
    def mean_burst_bytes(self) -> float:
        if not self.burst_bytes:
            return 0.0
        return float(np.mean(self.burst_bytes))


class ActivationCoalescer:
    """One Activating Unit's double-buffered store path.

    Activations are pushed as they occur; when the front queue fills, the
    buffers swap and the (now) back queue drains to memory as one burst.
    ``flush`` drains the residue at the end of the Apply phase.
    """

    def __init__(
        self,
        queue_entries: int = 16,
        record_bytes: int = 12,
        name: str = "au",
    ) -> None:
        if queue_entries < 1:
            raise ValueError("queue_entries must be >= 1")
        self.record_bytes = record_bytes
        self._buffer: DoubleBuffer[int] = DoubleBuffer(queue_entries, name)
        self._burst_bytes: List[int] = []
        self.activations = 0

    def activate(self, vertex_id: int) -> None:
        """Record one activation (the true branch of the conditional store)."""
        self.activations += 1
        if not self._buffer.push(vertex_id):
            # Front full: swap and drain the full queue as one burst.
            self._buffer.swap()
            drained = self._buffer.drain_back()
            self._burst_bytes.append(len(drained) * self.record_bytes)
            if not self._buffer.push(vertex_id):  # pragma: no cover - defensive
                raise RuntimeError("double buffer cannot accept after swap")

    def flush(self) -> None:
        """End of Apply phase: write out whatever remains."""
        self._buffer.swap()
        drained = self._buffer.drain_back()
        if drained:
            self._burst_bytes.append(len(drained) * self.record_bytes)
        # The other queue may also hold residue if swaps interleaved oddly.
        self._buffer.swap()
        drained = self._buffer.drain_back()
        if drained:
            self._burst_bytes.append(len(drained) * self.record_bytes)

    def stats(self) -> CoalesceStats:
        return CoalesceStats(
            activations=self.activations,
            bursts=len(self._burst_bytes),
            burst_bytes=list(self._burst_bytes),
        )


def coalesced_store_bursts(
    num_activations: int,
    num_units: int = 128,
    queue_entries: int = 16,
    record_bytes: int = 12,
) -> tuple:
    """Closed-form burst profile for an iteration's activations.

    Activations spread across ``num_units`` AUs (hash placement); each AU
    emits full-queue bursts plus one residue burst.

    Returns:
        ``(num_bursts, mean_burst_bytes)``.
    """
    if num_activations <= 0:
        return 0, 0.0
    per_unit = num_activations / num_units
    units_used = min(num_units, num_activations)
    full_bursts_per_unit = int(per_unit // queue_entries)
    residue = per_unit - full_bursts_per_unit * queue_entries
    bursts = units_used * (full_bursts_per_unit + (1 if residue > 0 else 0))
    mean_bytes = num_activations * record_bytes / max(bursts, 1)
    return int(bursts), float(mean_bytes)
