"""Per-iteration timing model of the DCA decentralized accelerator.

Same observer interface as the GraphDynS/Graphicionado/Gunrock models,
so one functional run drives all four on identical data-dependent
behaviour.  The structural differences from GraphDynS (its direct
ancestor):

* **decentralized dispatch** — each lane pulls balanced work itself;
  scheduling cost is one decision per active vertex, not a per-edge
  central front-end;
* **ownership routing instead of a crossbar** — every destination
  vertex belongs to exactly one lane (``dst % num_lanes``); the update
  bound is the *busiest owner lane*, plus a fixed router hop, with no
  128-radix arbitration;
* **conflict-free reduces** — same-destination results meet inside one
  lane's reduce unit, which forwards operands back-to-back, so RAW
  conflicts never stall (GraphDynS needs its zero-stall pipeline trick;
  DCA gets the property by construction);
* **banked Apply** — the ready-to-update bitmap and apply units are
  banked per lane; the phase is bounded by the busiest bank, not the
  aggregate lane count.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from ..core.coalesce import coalesced_store_bursts
from ..core.prefetch import plan_exact_prefetch
from ..core.scheduling import balanced_dispatch
from ..core.update_bitmap import ReadyToUpdateBitmap
from ..core.vectorize import vectorize_workloads
from ..graph.csr import CSRGraph
from ..graph.slicing import plan_slices
from ..memory.hbm import HBMModel
from ..memory.request import AccessPattern, Region
from ..memory.traffic import TrafficLedger
from ..metrics.counters import PhaseBreakdown, RunReport
from ..obs import get_recorder
from ..vcpm.engine import IterationData
from ..vcpm.spec import AlgorithmSpec
from .config import DCA_CONFIG, DCAConfig

__all__ = ["DCATimingModel"]


class DCATimingModel:
    """Accumulates modeled cycles for one (graph, algorithm) run on DCA."""

    def __init__(
        self,
        graph: CSRGraph,
        spec: AlgorithmSpec,
        config: DCAConfig = DCA_CONFIG,
    ) -> None:
        self.graph = graph
        self.spec = spec
        self.config = config
        self.hbm = HBMModel(config.hbm, owner="DCA")
        self.traffic = TrafficLedger()
        self.slice_plan = plan_slices(
            graph.num_vertices, config.vb_total_bytes, tprop_bytes=4
        )
        self.phases: List[PhaseBreakdown] = []
        self.total_cycles = 0.0
        self.edges_processed = 0
        self.vertices_processed = 0
        self.scheduling_ops = 0
        self.update_operations = 0
        self.stall_cycles = 0.0

    # ------------------------------------------------------------------
    # Per-iteration hook
    # ------------------------------------------------------------------
    def on_iteration(self, data: IterationData) -> None:
        rec = get_recorder()
        with rec.span(
            "dca.iteration", track="DCA", iteration=data.iteration
        ):
            updates_before = self.update_operations
            scatter = self._scatter_cycles(data)
            if rec.enabled:
                t0 = rec.clock.now
                rec.complete_span(
                    "scatter",
                    begin=t0,
                    duration=scatter.scatter_cycles,
                    track="DCA",
                    edges=data.num_edges,
                )
                rec.complete_span(
                    "scatter.dispatch",
                    begin=t0,
                    duration=scatter.scatter_compute_cycles,
                    track="DCA.compute",
                )
                rec.complete_span(
                    "scatter.prefetch",
                    begin=t0,
                    duration=scatter.scatter_memory_cycles,
                    track="DCA.memory",
                )
                rec.complete_span(
                    "scatter.reduce",
                    begin=t0,
                    duration=scatter.scatter_update_cycles,
                    track="DCA.update",
                )
            rec.clock.advance(scatter.scatter_cycles)
            apply_cycles = self._apply_cycles(data)
            if rec.enabled:
                rec.complete_span(
                    "apply",
                    begin=rec.clock.now,
                    duration=apply_cycles,
                    track="DCA",
                    updates=self.update_operations - updates_before,
                )
                rec.counter("dca.edges").add(data.num_edges)
                rec.counter("dca.update_operations").add(
                    self.update_operations - updates_before
                )
                rec.histogram("dca.lane_load").observe(
                    self._owner_imbalance(data.edge_dst)
                )
            rec.clock.advance(apply_cycles)
        phase = dataclasses.replace(scatter, apply_cycles=apply_cycles)
        self.phases.append(phase)
        self.total_cycles += phase.total_cycles
        self.edges_processed += data.num_edges

    # ------------------------------------------------------------------
    def _owner_lane_loads(self, edge_dst: np.ndarray) -> np.ndarray:
        return np.bincount(
            edge_dst % self.config.num_lanes, minlength=self.config.num_lanes
        )

    def _owner_imbalance(self, edge_dst: np.ndarray) -> float:
        if edge_dst.size == 0:
            return 0.0
        loads = self._owner_lane_loads(edge_dst)
        return float(loads.max() / max(loads.mean(), 1e-9))

    # ------------------------------------------------------------------
    # Scatter phase
    # ------------------------------------------------------------------
    def _scatter_cycles(self, data: IterationData) -> PhaseBreakdown:
        cfg = self.config
        num_slices = self.slice_plan.num_slices

        if data.num_edges == 0:
            return PhaseBreakdown(
                iteration=data.iteration, scatter_cycles=0.0, apply_cycles=0.0
            )

        # --- Decentralized work distribution ---
        # Lanes pull balanced chunks themselves; the only front-end cost
        # is one decision per active vertex (vs GraphDynS's per-split
        # central Dispatcher ops).
        outcome = balanced_dispatch(
            data.active_degrees, cfg.num_lanes, cfg.e_threshold
        )
        self.scheduling_ops += data.num_active
        chunk_sizes = np.minimum(data.active_degrees, cfg.e_list_size)
        vec = vectorize_workloads(chunk_sizes, cfg.n_simt, combine_small=True)
        lane_eff = max(vec.lane_efficiency, 1e-3)
        compute_cycles = outcome.max_load / (cfg.n_simt * lane_eff)

        # --- Ownership-routed update (no crossbar) ---
        # Each destination has exactly one owner lane; the busiest owner
        # bounds the update sub-datapath.  In-lane operand forwarding
        # makes same-destination reduces conflict-free, so there is no
        # stall term at all.
        loads = self._owner_lane_loads(data.edge_dst)
        update_cycles = float(loads.max()) + cfg.router_hop_cycles

        # --- Data access (exact prefetch, shared HBM) ---
        plan = plan_exact_prefetch(
            data.active_offsets, data.active_degrees, self.spec.uses_weights
        )
        patterns = list(plan.patterns)
        if num_slices > 1:
            scaled: List[AccessPattern] = []
            for pattern in patterns:
                if pattern.region is Region.ACTIVE_VERTEX:
                    scaled.append(
                        dataclasses.replace(
                            pattern,
                            total_bytes=pattern.total_bytes * num_slices,
                        )
                    )
                elif pattern.region is Region.EDGE:
                    scaled.append(
                        dataclasses.replace(
                            pattern,
                            run_bytes=max(
                                pattern.run_bytes / num_slices, 8.0
                            ),
                        )
                    )
                else:
                    scaled.append(pattern)
            patterns = scaled
        service = self.hbm.service(patterns)
        self.traffic.add_all(patterns)

        startup = cfg.hbm.base_latency_cycles * num_slices
        total = max(compute_cycles, update_cycles, service.cycles) + startup
        return PhaseBreakdown(
            iteration=data.iteration,
            scatter_cycles=total,
            apply_cycles=0.0,
            scatter_compute_cycles=compute_cycles,
            scatter_memory_cycles=service.cycles,
            scatter_update_cycles=update_cycles,
            scatter_stall_cycles=0.0,
        )

    # ------------------------------------------------------------------
    # Apply phase
    # ------------------------------------------------------------------
    def _apply_cycles(self, data: IterationData) -> float:
        cfg = self.config
        num_vertices = data.num_vertices
        if num_vertices == 0:
            return 0.0

        scheduled = ReadyToUpdateBitmap.scheduled_count(
            data.modified_ids, num_vertices, cfg.bitmap_block_size
        )
        self.update_operations += scheduled
        self.vertices_processed += scheduled
        if scheduled == 0:
            return 0.0

        # Banked Apply: modified vertices land on their owner lanes; the
        # busiest bank bounds the phase.  Bitmap blocks interleave over
        # lanes, so bank load is the scheduled count of the worst lane.
        if data.num_modified:
            bank_loads = np.bincount(
                data.modified_ids % cfg.num_lanes, minlength=cfg.num_lanes
            )
            # Each bank applies n_simt vertices per cycle.
            busiest = float(bank_loads.max()) * (
                scheduled / max(data.num_modified, 1)
            )
            compute_cycles = busiest / cfg.n_simt
        else:
            compute_cycles = scheduled / cfg.total_lanes

        run_bytes = float(cfg.bitmap_block_size) * 4.0
        prop_bytes = 8 if self.spec.uses_degree_cprop else 4
        patterns = [
            AccessPattern(
                Region.VERTEX_PROP,
                total_bytes=scheduled * prop_bytes,
                run_bytes=run_bytes * prop_bytes / 4.0,
            ),
            AccessPattern(
                Region.OFFSET, total_bytes=scheduled * 4, run_bytes=run_bytes
            ),
            AccessPattern(
                Region.VERTEX_PROP,
                total_bytes=scheduled * 4,
                run_bytes=run_bytes,
                is_write=True,
            ),
        ]
        if data.num_activated:
            # Per-lane activation queues coalesce stores exactly like
            # GraphDynS's AU queues, just banked by owner lane.
            bursts, mean_burst = coalesced_store_bursts(
                data.num_activated,
                cfg.num_lanes,
                cfg.au_queue_entries,
                cfg.active_record_bytes,
            )
            patterns.append(
                AccessPattern(
                    Region.ACTIVE_VERTEX,
                    total_bytes=data.num_activated * cfg.active_record_bytes,
                    run_bytes=max(mean_burst, float(cfg.active_record_bytes)),
                    is_write=True,
                )
            )
        service = self.hbm.service(patterns)
        self.traffic.add_all(patterns)
        return (
            max(compute_cycles, service.cycles)
            + cfg.hbm.base_latency_cycles / 2.0
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> RunReport:
        """Run-level summary in the shared cross-backend schema."""
        edge_bytes = 8 if self.spec.uses_weights else 4
        storage = self.graph.storage_bytes(
            edge_bytes=edge_bytes, include_source_ids=False
        )
        return RunReport(
            system="DCA",
            algorithm=self.spec.name,
            graph_name=self.graph.name,
            cycles=self.total_cycles,
            frequency_hz=self.config.frequency_hz,
            edges_processed=self.edges_processed,
            vertices_processed=self.vertices_processed,
            iterations=len(self.phases),
            traffic=self.traffic,
            peak_bytes_per_cycle=self.config.hbm.peak_bytes_per_cycle,
            phases=self.phases,
            scheduling_ops=self.scheduling_ops,
            update_operations=self.update_operations,
            stall_cycles=self.stall_cycles,
            storage_bytes=storage,
        )
