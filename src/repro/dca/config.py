"""DCA hardware configuration (arXiv:2202.11343, Table-3-equivalent).

The DCA follow-up keeps GraphDynS's aggregate resources — 1 GHz clock,
128 execution lanes, 32 MB of on-chip vertex storage, HBM 1.0 at
512 GB/s — but *decentralizes* them: instead of a 16-PE processor
feeding a 128-UE updater through a central 128-radix crossbar, the chip
is an array of identical lanes, each owning an interleaved shard of the
vertex space and its whole datapath (process-edge ALU, reduce unit,
apply unit, vertex-buffer bank).  Cross-lane traffic rides a light
ring/mesh router instead of the crossbar, and reduce conflicts resolve
*inside* the owning lane by operand forwarding, never by stalling a
shared structure.
"""

from __future__ import annotations

import dataclasses

from ..memory.hbm import HBM1_512GBS, HBMConfig

__all__ = ["DCAConfig", "DCA_CONFIG"]


@dataclasses.dataclass(frozen=True)
class DCAConfig:
    """Tunable parameters of the DCA model.

    Attributes:
        num_lanes: independent datapath lanes; each owns the vertices
            ``v`` with ``v % num_lanes == lane`` (interleaved sharding).
        n_simt: SIMT width of each lane's process-edge stage (so
            aggregate edge throughput matches GraphDynS's 128 lanes).
        e_threshold: edge-list split threshold for balanced dispatch —
            dispatch itself is decentralized (each lane pulls work), but
            oversized lists are still split for balance.
        e_list_size: sub-list granularity after a split.
        vb_bytes_per_lane: per-lane vertex-buffer bank (aggregate 32 MB).
        bitmap_block_size: vertices per ready-to-update bitmap bit; the
            bitmap is banked per lane, not centralized.
        au_queue_entries: per-lane activation coalescing queue depth.
        active_record_bytes: bytes per ``(vid, prop)`` activation record.
        router_hop_cycles: added latency of a cross-lane reduce hop.
    """

    frequency_hz: float = 1e9
    num_lanes: int = 16
    n_simt: int = 8
    e_threshold: int = 128
    e_list_size: int = 16
    vb_bytes_per_lane: int = 2 * 1024 * 1024
    bitmap_block_size: int = 256
    au_queue_entries: int = 16
    active_record_bytes: int = 12
    router_hop_cycles: float = 2.0
    hbm: HBMConfig = HBM1_512GBS

    @property
    def total_lanes(self) -> int:
        """Aggregate edge throughput per cycle (matches GraphDynS's 128)."""
        return self.num_lanes * self.n_simt

    @property
    def vb_total_bytes(self) -> int:
        """Aggregate vertex-buffer capacity (32 MB)."""
        return self.num_lanes * self.vb_bytes_per_lane

    def with_num_lanes(self, num_lanes: int) -> "DCAConfig":
        """A copy with a different lane count (scaling studies)."""
        return dataclasses.replace(self, num_lanes=num_lanes)


#: The configuration used throughout the evaluation.
DCA_CONFIG = DCAConfig()
