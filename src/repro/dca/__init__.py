"""DCA: decentralized-datapath graph accelerator model (arXiv:2202.11343).

The same group's follow-up to GraphDynS replaces the centralized
dispatcher/crossbar/updater pipeline with an array of identical lanes,
each owning an interleaved vertex shard and its full datapath.  This
package models it as the registry's fourth backend, directly comparable
to GraphDynS on every figure.
"""

from .config import DCA_CONFIG, DCAConfig
from .timing import DCATimingModel

__all__ = ["DCAConfig", "DCA_CONFIG", "DCATimingModel"]
