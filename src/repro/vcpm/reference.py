"""Independent reference implementations of the five algorithms.

These use classic textbook formulations (deque BFS, binary-heap Dijkstra,
worklist label propagation, power iteration) rather than the VCPM engine, so
tests can cross-check the vectorized engine against structurally different
code computing the same fixpoints.

Semantics notes:

* ``CC`` here is the fixpoint of min-label propagation along *directed*
  edges, which is what push-based VCPM computes (on symmetric graphs it
  coincides with connected components).
* ``PAGERANK`` follows the paper's Apply ``(alpha + beta * tProp) / deg``
  with the property storing ``rank / out_degree``; the reference returns the
  same quantity.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from .algorithms import PR_ALPHA, PR_BETA

__all__ = [
    "bfs_levels",
    "sssp_distances",
    "cc_labels",
    "sswp_widths",
    "pagerank_scores",
]


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Hop count from ``source``; ``inf`` for unreachable vertices."""
    levels = np.full(graph.num_vertices, float("inf"))
    levels[source] = 0.0
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        for v in graph.neighbors(u):
            v = int(v)
            if levels[v] == float("inf"):
                levels[v] = levels[u] + 1.0
                frontier.append(v)
    return levels


def sssp_distances(graph: CSRGraph, source: int) -> np.ndarray:
    """Dijkstra shortest-path distances from ``source``."""
    dist = np.full(graph.num_vertices, float("inf"))
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        neighbors = graph.neighbors(u)
        weights = graph.edge_weights(u)
        for v, w in zip(neighbors, weights):
            v = int(v)
            nd = d + float(w)
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def cc_labels(graph: CSRGraph) -> np.ndarray:
    """Fixpoint of min-label propagation along directed edges.

    Every vertex starts labelled with its own id; labels propagate along out
    edges until no label shrinks.
    """
    labels = np.arange(graph.num_vertices, dtype=np.float64)
    worklist = deque(range(graph.num_vertices))
    queued = np.ones(graph.num_vertices, dtype=bool)
    while worklist:
        u = worklist.popleft()
        queued[u] = False
        label = labels[u]
        for v in graph.neighbors(u):
            v = int(v)
            if label < labels[v]:
                labels[v] = label
                if not queued[v]:
                    queued[v] = True
                    worklist.append(v)
    return labels


def sswp_widths(graph: CSRGraph, source: int) -> np.ndarray:
    """Single-source widest path: maximize the minimum edge weight.

    Dijkstra variant with a max-heap on path width.  The source itself has
    width ``inf`` (matching the VCPM initialization of Table 2).
    """
    width = np.zeros(graph.num_vertices)
    width[source] = float("inf")
    heap = [(-float("inf"), source)]
    while heap:
        neg_w, u = heapq.heappop(heap)
        w_u = -neg_w
        if w_u < width[u]:
            continue
        neighbors = graph.neighbors(u)
        weights = graph.edge_weights(u)
        for v, ew in zip(neighbors, weights):
            v = int(v)
            cand = min(w_u, float(ew))
            if cand > width[v]:
                width[v] = cand
                heapq.heappush(heap, (-cand, v))
    return width


def pagerank_scores(
    graph: CSRGraph,
    iterations: int = 10,
    alpha: float = PR_ALPHA,
    beta: float = PR_BETA,
    tolerance: Optional[float] = None,
) -> np.ndarray:
    """Power iteration for the paper's PageRank formulation.

    Returns the stored property ``rank / out_degree`` after ``iterations``
    rounds of ``rank_v = alpha + beta * sum_{u->v} rank_u / deg_u`` starting
    from uniform ranks ``1/N``.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0)
    deg = np.maximum(graph.out_degree().astype(np.float64), 1.0)
    prop = np.full(n, 1.0 / n) / deg
    sources = graph.edge_sources()
    for _ in range(iterations):
        contrib = np.zeros(n)
        np.add.at(contrib, graph.edges, prop[sources])
        new_prop = (alpha + beta * contrib) / deg
        if tolerance is not None and np.abs(new_prop - prop).sum() < tolerance:
            prop = new_prop
            break
        prop = new_prop
    return prop
