"""Sharded VCPM execution: independent per-shard Scatter, merge at Apply.

The out-of-core execution tier.  A :class:`~repro.graph.slicing.PartitionPlan`
splits the destination space into contiguous shards; every iteration each
shard runs the Scatter phase *independently* over its own temporary-property
segment (optionally VB-sliced within the shard, Section 4.2.1), and the
disjoint segments are merged back before a single global Apply phase.

Why this is safe (the byte-identical invariant): shards partition the
destination space, so each shard owns a disjoint segment of ``t_prop``.
Within a shard the edge stream keeps its traversal order, so the
per-destination reduction order is exactly what the unsharded engine
produces — bitwise-identical temporary properties (including non-associative
float accumulation for PR), hence bitwise-identical Apply outputs, frontiers,
and traces.

Process fan-out plugs in through the ``shard_runner`` seam: the harness
service maps picklable :class:`ShardScatterTask` descriptors onto its process
executor, where each worker re-reads the graph (per Graphicionado's slicing,
which re-reads active vertex data per slice) and returns its segment.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.slicing import (
    PartitionPlan,
    Shard,
    SlicePlan,
    plan_partitions,
    plan_slices,
)
from ..kernels.tiers import active_tier as _active_tier
from ..obs import get_recorder
from .engine import (
    IterationData,
    IterationObserver,
    IterationTrace,
    VCPMResult,
    gather_edge_indices,
)
from .spec import AlgorithmSpec

__all__ = [
    "ShardScatterTask",
    "ShardRunner",
    "run_vcpm_partitioned",
    "scatter_shard_task",
]


@dataclasses.dataclass
class ShardScatterTask:
    """Self-contained, picklable description of one shard's Scatter pass.

    Carries everything a worker process needs *except* the graph itself,
    which is referenced by ``graph_ref`` (dataset key + storage kind) and
    re-loaded worker-side through the process-wide dataset memo — shipping
    paper-scale CSR arrays through pickle would defeat out-of-core
    execution.

    Attributes:
        iteration: zero-based iteration index (for spans/debugging).
        shard_index: index of the shard within its plan.
        vertex_lo / vertex_hi: the shard's destination interval.
        algorithm: algorithm spec name (resolved via ``get_algorithm``).
        graph_ref: ``(dataset_key, storage_kind)`` for worker-side reload,
            or ``None`` when the runner executes in-process.
        active: active vertex ids this iteration.
        prop: full property array (read-only input to Scatter).
        t_prop_segment: copy of the shard's temporary-property segment;
            the reduction folds into this and returns it.
        vb_capacity_bytes: optional Vertex Buffer capacity for shard-local
            slicing; ``None`` disables VB slicing.
        tprop_bytes: bytes per temporary property entry.
        kernel_tier: concrete kernel tier the shard should execute under
            (captured from the parent's ambient tier at task creation so
            process workers inherit the request's tier instead of
            re-deriving it from their own environment).
    """

    iteration: int
    shard_index: int
    vertex_lo: int
    vertex_hi: int
    algorithm: str
    graph_ref: Optional[Tuple[str, str]]
    active: np.ndarray
    prop: np.ndarray
    t_prop_segment: np.ndarray
    vb_capacity_bytes: Optional[int] = None
    tprop_bytes: int = 4
    kernel_tier: Optional[str] = None


#: Maps shard tasks to their reduced segments, in task order.
ShardRunner = Callable[[List[ShardScatterTask]], List[np.ndarray]]


def _scatter_segment(
    spec: AlgorithmSpec,
    shard: Shard,
    vb_plan: Optional[SlicePlan],
    edge_dst: np.ndarray,
    edge_w: np.ndarray,
    u_prop: np.ndarray,
    segment: np.ndarray,
) -> np.ndarray:
    """Reduce the shard's edges into its (mutable) ``t_prop`` segment.

    ``edge_dst``/``edge_w``/``u_prop`` are the full active edge stream in
    traversal order; only edges landing in the shard are folded, one VB
    slice at a time when a shard-local plan is given.  Traversal order is
    preserved per destination, which is what makes the result bitwise
    equal to the unsharded reduction.
    """
    in_shard = (edge_dst >= shard.vertex_lo) & (edge_dst < shard.vertex_hi)
    if vb_plan is None:
        if np.any(in_shard):
            results = spec.process_edge(u_prop[in_shard], edge_w[in_shard])
            spec.reduce_op.ufunc.at(
                segment, edge_dst[in_shard] - shard.vertex_lo, results
            )
        return segment
    for slice_ in vb_plan:
        in_slice = in_shard & (edge_dst >= slice_.vertex_lo) & (
            edge_dst < slice_.vertex_hi
        )
        if not np.any(in_slice):
            continue
        results = spec.process_edge(u_prop[in_slice], edge_w[in_slice])
        spec.reduce_op.ufunc.at(
            segment, edge_dst[in_slice] - shard.vertex_lo, results
        )
    return segment


def scatter_shard_task(task: ShardScatterTask, graph: CSRGraph) -> np.ndarray:
    """Execute one :class:`ShardScatterTask` against ``graph``.

    The worker-side entry point: re-gathers the active edge stream from
    the (typically mmap-backed) graph and reduces the shard's edges into
    the task's segment copy.  Pure — no shared mutable state.  Runs under
    the task's captured kernel tier so worker processes inherit the
    parent request's tier selection.
    """
    from ..kernels.tiers import use_tier

    with use_tier(task.kernel_tier):
        return _scatter_shard_task_body(task, graph)


def _scatter_shard_task_body(task: ShardScatterTask, graph: CSRGraph) -> np.ndarray:
    from .algorithms import get_algorithm

    spec = get_algorithm(task.algorithm)
    shard = Shard(
        index=task.shard_index,
        vertex_lo=task.vertex_lo,
        vertex_hi=task.vertex_hi,
    )
    edge_idx = gather_edge_indices(graph.offsets, task.active)
    edge_dst = graph.edges[edge_idx]
    edge_w = graph.weights[edge_idx].astype(np.float64)
    degrees = graph.offsets[task.active + 1] - graph.offsets[task.active]
    u_prop = np.repeat(task.prop[task.active], degrees)
    vb_plan: Optional[SlicePlan] = None
    if task.vb_capacity_bytes is not None:
        vb_plan = plan_slices(
            shard.num_vertices,
            task.vb_capacity_bytes,
            tprop_bytes=task.tprop_bytes,
            origin=shard.vertex_lo,
        )
    return _scatter_segment(
        spec, shard, vb_plan, edge_dst, edge_w, u_prop, task.t_prop_segment
    )


def run_vcpm_partitioned(
    graph: CSRGraph,
    spec: AlgorithmSpec,
    shards: int = 1,
    vb_capacity_bytes: Optional[int] = None,
    source: Optional[int] = 0,
    max_iterations: Optional[int] = None,
    observers: Sequence[IterationObserver] = (),
    pr_tolerance: float = 1e-7,
    tprop_bytes: int = 4,
    shard_runner: Optional[ShardRunner] = None,
    graph_ref: Optional[Tuple[str, str]] = None,
) -> VCPMResult:
    """Execute ``spec`` with destination-sharded Scatter and merged Apply.

    Results are bitwise-identical to :func:`repro.vcpm.engine.run_vcpm`
    for every ``shards`` / ``vb_capacity_bytes`` / storage combination
    (see module docstring); observers receive the same full merged
    :class:`IterationData` the unsharded engine produces.

    Args:
        graph: input CSR graph (any storage backend).
        spec: algorithm definition.
        shards: destination-shard count (1 = unsharded).
        vb_capacity_bytes: optional Vertex Buffer capacity enabling
            Section 4.2.1 slicing *within* each shard.
        source / max_iterations / observers / pr_tolerance: as in
            :func:`repro.vcpm.engine.run_vcpm`.
        tprop_bytes: bytes per temporary property entry (slice width).
        shard_runner: optional executor seam mapping
            :class:`ShardScatterTask` lists to reduced segments (e.g. the
            harness's process fan-out); ``None`` runs shards in-process.
        graph_ref: ``(dataset_key, storage_kind)`` stamped on tasks so
            worker processes can re-load the graph; required when
            ``shard_runner`` crosses a process boundary.
    """
    num_vertices = graph.num_vertices
    if max_iterations is None:
        max_iterations = spec.default_max_iterations
    if spec.needs_source:
        if source is None:
            raise ValueError(f"{spec.name} requires a source vertex")
        if not (0 <= source < max(num_vertices, 1)):
            raise ValueError(f"source {source} out of range")
    else:
        source = None

    plan: PartitionPlan = plan_partitions(num_vertices, shards)
    vb_plans: List[Optional[SlicePlan]] = [
        plan.vb_plan(shard, vb_capacity_bytes, tprop_bytes)
        if vb_capacity_bytes is not None
        else None
        for shard in plan
    ]

    prop = spec.initial_prop(num_vertices, source)
    t_prop = spec.initial_tprop(num_vertices)
    if spec.uses_degree_cprop:
        c_prop = graph.out_degree().astype(np.float64)
    else:
        c_prop = np.zeros(num_vertices, dtype=np.float64)

    if spec.all_vertices_active_initially:
        active = np.arange(num_vertices, dtype=np.int64)
    elif source is not None and num_vertices:
        active = np.asarray([source], dtype=np.int64)
    else:
        active = np.zeros(0, dtype=np.int64)

    if spec.uses_degree_cprop and num_vertices:
        prop = prop / np.maximum(c_prop, 1.0)

    traces: List[IterationTrace] = []
    converged = False
    rec = get_recorder()

    for iteration in range(max_iterations):
        if active.size == 0:
            converged = True
            break

        with rec.span(
            "vcpm.iteration",
            track="vcpm",
            algorithm=spec.name,
            iteration=iteration,
            active=int(active.size),
            shards=plan.num_shards,
        ) as iter_span:
            # --------------------- sharded Scatter phase ---------------------
            with rec.span("vcpm.scatter", track="vcpm", shards=plan.num_shards):
                edge_idx = gather_edge_indices(graph.offsets, active)
                edge_dst = graph.edges[edge_idx]
                edge_w = graph.weights[edge_idx].astype(np.float64)
                degrees = graph.offsets[active + 1] - graph.offsets[active]
                u_prop = np.repeat(prop[active], degrees)
                t_prop_before = t_prop.copy()

                if shard_runner is None:
                    for shard, vb_plan in zip(plan, vb_plans):
                        with rec.span(
                            "vcpm.shard_scatter",
                            track="vcpm",
                            shard=shard.index,
                            iteration=iteration,
                        ):
                            segment = _scatter_segment(
                                spec,
                                shard,
                                vb_plan,
                                edge_dst,
                                edge_w,
                                u_prop,
                                t_prop[shard.vertex_lo:shard.vertex_hi].copy(),
                            )
                            t_prop[shard.vertex_lo:shard.vertex_hi] = segment
                        if rec.enabled:
                            rec.counter("vcpm.shard.scatters").add()
                else:
                    tasks = [
                        ShardScatterTask(
                            iteration=iteration,
                            shard_index=shard.index,
                            vertex_lo=shard.vertex_lo,
                            vertex_hi=shard.vertex_hi,
                            algorithm=spec.name,
                            graph_ref=graph_ref,
                            active=active,
                            prop=prop,
                            t_prop_segment=t_prop[
                                shard.vertex_lo:shard.vertex_hi
                            ].copy(),
                            vb_capacity_bytes=vb_capacity_bytes,
                            tprop_bytes=tprop_bytes,
                            kernel_tier=_active_tier(),
                        )
                        for shard in plan
                    ]
                    segments = shard_runner(tasks)
                    for shard, segment in zip(plan, segments):
                        t_prop[shard.vertex_lo:shard.vertex_hi] = segment
                    if rec.enabled:
                        rec.counter("vcpm.shard.scatters").add(len(tasks))
                modified = np.flatnonzero(t_prop != t_prop_before)

            # --------------------- merged Apply phase ------------------------
            with rec.span("vcpm.apply", track="vcpm"):
                apply_res = spec.apply(prop, t_prop, c_prop)
                activated_mask = apply_res != prop
                activated = np.flatnonzero(activated_mask)
                old_prop = prop
                prop = np.where(activated_mask, apply_res, prop)

            data = IterationData(
                iteration=iteration,
                active_ids=active,
                active_degrees=degrees,
                active_offsets=graph.offsets[active],
                edge_dst=edge_dst,
                edge_weights=edge_w,
                modified_ids=modified,
                activated_ids=activated,
                num_vertices=num_vertices,
            )
            with rec.span("vcpm.observe", track="vcpm"):
                for observer in observers:
                    observer.on_iteration(data)
            if rec.enabled:
                iter_span.annotate(
                    edges=int(edge_dst.size),
                    modified=int(modified.size),
                    activated=int(activated.size),
                )
                rec.counter("vcpm.iterations").add()
                rec.counter("vcpm.active_vertices").add(int(active.size))
                rec.counter("vcpm.edges").add(int(edge_dst.size))
                rec.counter("vcpm.modified").add(int(modified.size))
                rec.counter("vcpm.activated").add(int(activated.size))
                rec.histogram("vcpm.frontier_size").observe(int(active.size))
                rec.histogram("vcpm.active_degree").observe_many(degrees)
        traces.append(
            IterationTrace(
                iteration=iteration,
                num_active=int(active.size),
                num_edges=int(edge_dst.size),
                num_modified=int(modified.size),
                num_activated=int(activated.size),
            )
        )

        if spec.resets_tprop_each_iteration:
            t_prop = spec.initial_tprop(num_vertices)
            delta = float(np.abs(prop - old_prop).sum())
            if delta < pr_tolerance:
                converged = True
                break
            active = np.arange(num_vertices, dtype=np.int64)
        else:
            active = activated
            if active.size == 0:
                converged = True
                break

    return VCPMResult(
        algorithm=spec.name,
        graph_name=graph.name,
        properties=prop,
        iterations=traces,
        converged=converged,
        source=source,
    )
