"""Incremental recomputation after edge churn: frontier deltas, not reruns.

After a :class:`repro.graph.dynamic.EdgeBatch` mutates a graph, the
standard formulation (Gunrock's frontier-delta model, arXiv:1701.01170)
observes that a *monotone* algorithm — any min/max-reduce VCPM spec —
need not restart: its fixpoint is the unique limit of the reduce over
all path expressions, independent of the starting property state as
long as the start is pointwise no better than the new fixpoint.  An
insert-only batch can only *improve* reachable values, so the previous
fixpoint is a valid warm start, and the only vertices that can initiate
improvements are the sources of the inserted edges.

:func:`run_vcpm_incremental` therefore seeds the frontier with exactly
those sources and continues from the previous property array.  Every
candidate value is the same float expression chain (``prop[u] ⊕ w``)
the full rerun computes, and min/max of identical bit patterns is bit
stable — so the delta path is **bit-identical** to a cold rerun on the
mutated graph.  That claim is not an optimization footnote; it is the
contract: the full-rerun path is retained and the conformance battery
asserts equality on every (backend × algorithm × batch) cell.

Anything outside the safe envelope — deletions (values may need to get
*worse*, which monotone continuation cannot express), accumulating
specs (PR's fixpoint depends on the start state), an unconverged or
mismatched previous result — falls back to the reference full rerun,
and says so in the outcome's ``reason``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.dynamic import EdgeBatch
from .engine import IterationObserver, VCPMResult, run_vcpm
from .spec import AlgorithmSpec

__all__ = [
    "IncrementalOutcome",
    "supports_delta",
    "run_vcpm_incremental",
]


@dataclasses.dataclass(frozen=True)
class IncrementalOutcome:
    """What an incremental step actually did, and why.

    Attributes:
        result: the (bit-exact) result on the mutated graph.
        mode: ``"delta"`` (frontier continuation) or ``"full"`` (reference
            rerun).
        reason: why this mode was chosen — ``"insert-only-monotone"`` for
            the delta path, otherwise the disqualifier.
        seed_count: frontier size the delta path started from (0 for
            full reruns).
    """

    result: VCPMResult
    mode: str
    reason: str
    seed_count: int

    @property
    def used_delta(self) -> bool:
        return self.mode == "delta"


def supports_delta(spec: AlgorithmSpec, batch: EdgeBatch) -> Optional[str]:
    """Why ``(spec, batch)`` cannot take the delta path, or ``None`` if it can.

    Returning the disqualifier (instead of a bare bool) keeps the
    decision auditable in outcomes and benchmark output.
    """
    if not spec.reduce_op.is_monotonic:
        return f"{spec.name} reduce is accumulating (fixpoint is start-dependent)"
    if not batch.insert_only:
        return f"batch deletes {batch.num_deletes} edge(s) (values may regress)"
    return None


def run_vcpm_incremental(
    graph: CSRGraph,
    spec: AlgorithmSpec,
    batch: EdgeBatch,
    previous: Optional[VCPMResult],
    source: Optional[int] = 0,
    max_iterations: Optional[int] = None,
    observers: Sequence[IterationObserver] = (),
    pr_tolerance: float = 1e-7,
) -> IncrementalOutcome:
    """Recompute ``spec`` on the *already-mutated* ``graph``.

    Args:
        graph: the post-batch CSR snapshot (``DynamicGraph.graph`` after
            ``apply(batch)``).
        spec: algorithm definition.
        batch: the batch that produced ``graph`` from the previous
            snapshot.
        previous: the converged result on the pre-batch snapshot, or
            ``None`` (forces a full rerun).
        source: root vertex, as for :func:`repro.vcpm.run_vcpm`.
        max_iterations: iteration cap for either path.
        observers: timing models fed whichever path runs — the delta
            path's iterations are real Scatter/Apply work, so cycle
            models price incremental steps natively.
        pr_tolerance: PR convergence threshold (full-rerun path only).

    Returns:
        An :class:`IncrementalOutcome`; ``.result.properties`` is
        bit-identical to a cold :func:`run_vcpm` on ``graph`` in both
        modes.
    """

    def full(reason: str) -> IncrementalOutcome:
        result = run_vcpm(
            graph,
            spec,
            source=source,
            max_iterations=max_iterations,
            observers=observers,
            pr_tolerance=pr_tolerance,
        )
        return IncrementalOutcome(
            result=result, mode="full", reason=reason, seed_count=0
        )

    blocker = supports_delta(spec, batch)
    if blocker is not None:
        return full(blocker)
    if previous is None:
        return full("no previous result")
    if not previous.converged:
        return full("previous result had not converged")
    if previous.algorithm != spec.name:
        return full(
            f"previous result is for {previous.algorithm}, not {spec.name}"
        )
    if previous.properties.shape != (graph.num_vertices,):
        return full("vertex count changed")
    if spec.needs_source and previous.source != source:
        return full(
            f"previous result used source {previous.source}, not {source}"
        )

    seeds = batch.seed_vertices()
    if seeds.size and seeds[-1] >= graph.num_vertices:
        return full("inserted edge endpoint outside previous vertex range")
    result = run_vcpm(
        graph,
        spec,
        source=source,
        max_iterations=max_iterations,
        observers=observers,
        pr_tolerance=pr_tolerance,
        initial_properties=previous.properties,
        initial_active=seeds,
    )
    if not result.converged:
        # The continuation hit the iteration cap; the reference path is
        # the only state we can trust bit-for-bit.
        return full("delta continuation hit the iteration cap")
    return IncrementalOutcome(
        result=result,
        mode="delta",
        reason="insert-only-monotone",
        seed_count=int(seeds.size),
    )
