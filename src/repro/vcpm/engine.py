"""Functional execution engine for the push-based VCPM (Algorithm 1 / 2).

The engine executes the algorithm *functionally* (bit-exact property values,
frontier evolution, convergence) while exposing, per iteration, exactly the
structural information that the paper's decoupled datapath extracts at
runtime:

* the active vertex list with per-vertex ``offset`` and ``edgeCnt``
  (Algorithm 2's dispatch stage),
* the destination id stream of the Scatter phase (drives crossbar/UE
  contention and RAW conflicts),
* the set of vertices whose temporary property was modified (the
  Ready-to-Update Bitmap contents),
* the set of vertices activated by Apply.

Timing models subscribe as :class:`IterationObserver`; one functional run can
drive any number of accelerator models, which keeps benchmarks honest (every
model sees the identical data-dependent behaviour) and fast.

Reduction is implemented with ``np.minimum.at`` / ``np.maximum.at`` /
``np.add.at``, which are semantically the atomic read-modify-write loops the
hardware performs.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Protocol, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from ..obs import get_recorder
from .spec import AlgorithmSpec

__all__ = [
    "IterationData",
    "IterationTrace",
    "VCPMResult",
    "IterationObserver",
    "run_vcpm",
    "gather_edge_indices",
]


def gather_edge_indices(
    offsets: np.ndarray, active: np.ndarray
) -> np.ndarray:
    """Indices into the edge array for every edge of the active vertices.

    Vectorized expansion of ``[range(offsets[u], offsets[u+1]) for u in
    active]`` preserving traversal order, which the timing models rely on.
    """
    starts = offsets[active]
    counts = offsets[active + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    # Base index of each run, repeated per element, plus a ramp.
    run_ends = np.cumsum(counts)
    run_starts_in_output = run_ends - counts
    base = np.repeat(starts - run_starts_in_output, counts)
    return base + np.arange(total, dtype=np.int64)


@dataclasses.dataclass
class IterationData:
    """Everything one iteration exposes to timing observers.

    Arrays are shared (not copied); observers must not mutate them.

    Attributes:
        iteration: zero-based iteration index.
        active_ids: ids of active vertices, in dispatch order.
        active_degrees: ``edgeCnt`` for each active vertex.
        active_offsets: ``offset`` for each active vertex.
        edge_dst: destination vertex id of every processed edge, in
            traversal order (concatenated per-active-vertex edge lists).
        edge_weights: weight of every processed edge (same order).
        modified_ids: vertices whose temporary property changed this
            iteration (contents of the Ready-to-Update Bitmap).
        activated_ids: vertices activated for the next iteration.
        num_vertices: total vertex count (Apply-phase width without update
            scheduling).
    """

    iteration: int
    active_ids: np.ndarray
    active_degrees: np.ndarray
    active_offsets: np.ndarray
    edge_dst: np.ndarray
    edge_weights: np.ndarray
    modified_ids: np.ndarray
    activated_ids: np.ndarray
    num_vertices: int

    @property
    def num_active(self) -> int:
        return int(self.active_ids.size)

    @property
    def num_edges(self) -> int:
        return int(self.edge_dst.size)

    @property
    def num_modified(self) -> int:
        return int(self.modified_ids.size)

    @property
    def num_activated(self) -> int:
        return int(self.activated_ids.size)


@dataclasses.dataclass(frozen=True)
class IterationTrace:
    """Scalar record of one iteration, kept for the whole run."""

    iteration: int
    num_active: int
    num_edges: int
    num_modified: int
    num_activated: int


@dataclasses.dataclass
class VCPMResult:
    """Output of a functional VCPM run."""

    algorithm: str
    graph_name: str
    properties: np.ndarray
    iterations: List[IterationTrace]
    converged: bool
    source: Optional[int]

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_edges_processed(self) -> int:
        return sum(t.num_edges for t in self.iterations)

    @property
    def total_active_vertices(self) -> int:
        return sum(t.num_active for t in self.iterations)

    @property
    def total_updates(self) -> int:
        return sum(t.num_modified for t in self.iterations)


class IterationObserver(Protocol):
    """Consumer of per-iteration structural data (e.g. a timing model)."""

    def on_iteration(self, data: IterationData) -> None:
        """Called once per iteration, after Apply completes."""
        ...  # pragma: no cover - protocol


def run_vcpm(
    graph: CSRGraph,
    spec: AlgorithmSpec,
    source: Optional[int] = 0,
    max_iterations: Optional[int] = None,
    observers: Sequence[IterationObserver] = (),
    pr_tolerance: float = 1e-7,
    initial_properties: Optional[np.ndarray] = None,
    initial_active: Optional[np.ndarray] = None,
) -> VCPMResult:
    """Execute ``spec`` on ``graph`` per the push-based VCPM of Algorithm 1.

    Args:
        graph: input CSR graph.
        spec: algorithm definition (Table 2 entry).
        source: root vertex for source-based algorithms; ignored when
            ``spec.needs_source`` is false.
        max_iterations: iteration cap; defaults to the spec's own cap.
        observers: timing models or statistics collectors fed each iteration.
        pr_tolerance: convergence threshold on the L1 property delta for
            accumulating (PR-style) algorithms.
        initial_properties: continue from this property array instead of
            the spec's cold-start state (incremental recomputation after
            an edge-churn batch).  Must be given together with
            ``initial_active``; only monotonic (min/max-reduce) specs can
            continue — their fixpoints are state-independent, so a warm
            start converges to the same values a cold start does.
        initial_active: initial frontier for a continuation run
            (typically the sources of freshly inserted edges).

    Returns:
        The final property array and per-iteration trace.
    """
    num_vertices = graph.num_vertices
    if max_iterations is None:
        max_iterations = spec.default_max_iterations
    if spec.needs_source:
        if source is None:
            raise ValueError(f"{spec.name} requires a source vertex")
        if not (0 <= source < max(num_vertices, 1)):
            raise ValueError(f"source {source} out of range")
    else:
        source = None

    continuing = initial_properties is not None or initial_active is not None
    if continuing:
        if initial_properties is None or initial_active is None:
            raise ValueError(
                "initial_properties and initial_active must be given together"
            )
        if spec.resets_tprop_each_iteration:
            raise ValueError(
                f"{spec.name} accumulates into tProp each iteration; its "
                "fixpoint depends on the starting state, so continuation "
                "runs are not meaningful — rerun from scratch instead"
            )

    if continuing:
        prop = np.array(initial_properties, dtype=np.float64, copy=True)
        if prop.shape != (num_vertices,):
            raise ValueError(
                f"initial_properties has shape {prop.shape}, "
                f"expected ({num_vertices},)"
            )
        active = np.unique(np.asarray(initial_active, dtype=np.int64))
        if active.size and (
            active[0] < 0 or active[-1] >= num_vertices
        ):
            raise ValueError("initial_active vertex out of range")
    else:
        prop = spec.initial_prop(num_vertices, source)
    t_prop = spec.initial_tprop(num_vertices)
    if spec.uses_degree_cprop:
        c_prop = graph.out_degree().astype(np.float64)
    else:
        c_prop = np.zeros(num_vertices, dtype=np.float64)

    if not continuing:
        if spec.all_vertices_active_initially:
            active = np.arange(num_vertices, dtype=np.int64)
        elif source is not None and num_vertices:
            active = np.asarray([source], dtype=np.int64)
        else:
            active = np.zeros(0, dtype=np.int64)

        # PR stores rank/deg; normalize the initial uniform ranks once.
        if spec.uses_degree_cprop and num_vertices:
            prop = prop / np.maximum(c_prop, 1.0)

    traces: List[IterationTrace] = []
    converged = False
    rec = get_recorder()

    for iteration in range(max_iterations):
        if active.size == 0:
            converged = True
            break

        with rec.span(
            "vcpm.iteration",
            track="vcpm",
            algorithm=spec.name,
            iteration=iteration,
            active=int(active.size),
        ) as iter_span:
            # ----------------------- Scatter phase -----------------------
            with rec.span("vcpm.scatter", track="vcpm"):
                edge_idx = gather_edge_indices(graph.offsets, active)
                edge_dst = graph.edges[edge_idx]
                edge_w = graph.weights[edge_idx].astype(np.float64)
                degrees = graph.offsets[active + 1] - graph.offsets[active]
                u_prop = np.repeat(prop[active], degrees)

                results = spec.process_edge(u_prop, edge_w)
                t_prop_before = t_prop.copy()
                spec.reduce_op.ufunc.at(t_prop, edge_dst, results)
                modified = np.flatnonzero(t_prop != t_prop_before)

            # ------------------------ Apply phase ------------------------
            with rec.span("vcpm.apply", track="vcpm"):
                apply_res = spec.apply(prop, t_prop, c_prop)
                activated_mask = apply_res != prop
                activated = np.flatnonzero(activated_mask)
                old_prop = prop
                prop = np.where(activated_mask, apply_res, prop)

            data = IterationData(
                iteration=iteration,
                active_ids=active,
                active_degrees=degrees,
                active_offsets=graph.offsets[active],
                edge_dst=edge_dst,
                edge_weights=edge_w,
                modified_ids=modified,
                activated_ids=activated,
                num_vertices=num_vertices,
            )
            # Timing observers advance the trace clock by their modeled
            # cycles, which becomes this iteration span's duration.
            with rec.span("vcpm.observe", track="vcpm"):
                for observer in observers:
                    observer.on_iteration(data)
            if rec.enabled:
                iter_span.annotate(
                    edges=int(edge_dst.size),
                    modified=int(modified.size),
                    activated=int(activated.size),
                )
                rec.counter("vcpm.iterations").add()
                rec.counter("vcpm.active_vertices").add(int(active.size))
                rec.counter("vcpm.edges").add(int(edge_dst.size))
                rec.counter("vcpm.modified").add(int(modified.size))
                rec.counter("vcpm.activated").add(int(activated.size))
                rec.histogram("vcpm.frontier_size").observe(int(active.size))
                rec.histogram("vcpm.active_degree").observe_many(degrees)
        traces.append(
            IterationTrace(
                iteration=iteration,
                num_active=int(active.size),
                num_edges=int(edge_dst.size),
                num_modified=int(modified.size),
                num_activated=int(activated.size),
            )
        )

        if spec.resets_tprop_each_iteration:
            # Accumulating algorithms (PR) restart the fold each iteration
            # and converge on the property delta instead of frontier decay.
            t_prop = spec.initial_tprop(num_vertices)
            delta = float(np.abs(prop - old_prop).sum())
            if delta < pr_tolerance:
                converged = True
                break
            active = np.arange(num_vertices, dtype=np.int64)
        else:
            active = activated
            if active.size == 0:
                converged = True
                break

    return VCPMResult(
        algorithm=spec.name,
        graph_name=graph.name,
        properties=prop,
        iterations=traces,
        converged=converged,
        source=source,
    )
