"""Extension algorithms beyond the paper's five.

The Dispatching/Processing model (and VCPM generally) expresses any
algorithm whose per-edge work is a ``Process_Edge`` and whose combination
is a commutative single-instruction ``Reduce`` -- the property the
zero-stall Reduce Pipeline exploits.  These extensions demonstrate that
generality (SpMV and degree centrality appear in the Graphicionado
evaluation; the others are standard VCPM workloads):

* **SpMV**  -- one sparse matrix-vector product: ``y = A x`` with
  ``Process_Edge = x[u] * w`` and a SUM reduce (single iteration).
* **DEGREE** -- in-degree counting: each edge contributes 1 (single
  iteration; trivially checks the scatter plumbing).
* **WIDEST-IN** (max-plus flavour) -- maximum incoming edge weight seen
  from an updated source, a MAX-reduce propagation.
* **REACH** -- reachability flags from the source (BFS without levels).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .spec import AlgorithmSpec, ReduceOp

__all__ = [
    "SPMV",
    "DEGREE_COUNT",
    "MAX_INCOMING",
    "REACHABILITY",
    "EXTENSION_ALGORITHMS",
    "get_extension",
]


def _uniform_init(value: float):
    def init(num_vertices: int, source: Optional[int]) -> np.ndarray:
        return np.full(num_vertices, value, dtype=np.float64)

    return init


def _source_flag_init(num_vertices: int, source: Optional[int]) -> np.ndarray:
    prop = np.zeros(num_vertices, dtype=np.float64)
    if source is not None and num_vertices:
        prop[source] = 1.0
    return prop


def _replace_apply(prop, t_prop, c_prop):
    """Apply that adopts the reduced value outright (y = reduce result)."""
    return t_prop


def _or_apply(prop, t_prop, c_prop):
    """Sticky boolean: once reached, stays reached."""
    return np.maximum(prop, np.isfinite(t_prop) * (t_prop > 0))


SPMV = AlgorithmSpec(
    name="SPMV",
    process_edge=lambda u_prop, weight: u_prop * weight,
    reduce_op=ReduceOp.SUM,
    apply=_replace_apply,
    initial_prop=_uniform_init(1.0),
    uses_weights=True,
    all_vertices_active_initially=True,
    needs_source=False,
    default_max_iterations=1,
)

DEGREE_COUNT = AlgorithmSpec(
    name="DEGREE",
    process_edge=lambda u_prop, weight: np.ones_like(u_prop),
    reduce_op=ReduceOp.SUM,
    apply=_replace_apply,
    initial_prop=_uniform_init(0.0),
    uses_weights=False,
    all_vertices_active_initially=True,
    needs_source=False,
    default_max_iterations=1,
)

MAX_INCOMING = AlgorithmSpec(
    name="MAXIN",
    process_edge=lambda u_prop, weight: weight,
    reduce_op=ReduceOp.MAX,
    apply=lambda prop, t_prop, c_prop: np.maximum(prop, t_prop),
    initial_prop=_uniform_init(float("-inf")),
    uses_weights=True,
    all_vertices_active_initially=True,
    needs_source=False,
    default_max_iterations=1,
)

REACHABILITY = AlgorithmSpec(
    name="REACH",
    process_edge=lambda u_prop, weight: u_prop,  # propagate the flag
    reduce_op=ReduceOp.MAX,
    apply=lambda prop, t_prop, c_prop: np.maximum(prop, np.maximum(t_prop, 0.0) > 0.0),
    initial_prop=_source_flag_init,
    uses_weights=False,
)

EXTENSION_ALGORITHMS: Dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (SPMV, DEGREE_COUNT, MAX_INCOMING, REACHABILITY)
}


def get_extension(name: str) -> AlgorithmSpec:
    """Look up an extension algorithm by name."""
    key = name.upper()
    if key not in EXTENSION_ALGORITHMS:
        raise KeyError(
            f"unknown extension {name!r}; "
            f"choose from {sorted(EXTENSION_ALGORITHMS)}"
        )
    return EXTENSION_ALGORITHMS[key]
