"""The five graph-analytics algorithms of Table 2.

=========  ==========================  =====================  ============================
Algorithm  Process_Edge                Reduce                 Apply
=========  ==========================  =====================  ============================
BFS        ``u.prop + 1``              ``min(tProp, res)``    ``min(prop, tProp)``
SSSP       ``u.prop + e.weight``       ``min(tProp, res)``    ``min(prop, tProp)``
CC         ``u.prop``                  ``min(tProp, res)``    ``min(prop, tProp)``
SSWP       ``min(u.prop, e.weight)``   ``max(tProp, res)``    ``max(prop, tProp)``
PR         ``u.prop``                  ``tProp + res``        ``(alpha + beta*tProp)/deg``
=========  ==========================  =====================  ============================

PageRank follows the Graphicionado formulation where the stored property is
``rank / out_degree`` so that ``Process_Edge`` needs no division; ``cProp`` is
the out-degree.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .spec import AlgorithmSpec, ReduceOp

__all__ = [
    "BFS",
    "SSSP",
    "CC",
    "SSWP",
    "PAGERANK",
    "ALGORITHMS",
    "algorithm_names",
    "get_algorithm",
    "PR_ALPHA",
    "PR_BETA",
]

#: Damping constants used by PageRank's Apply (Table 2's alpha and beta).
PR_ALPHA = 0.15
PR_BETA = 0.85


def _source_init(fill: float, source_value: float):
    """Property initializer: ``fill`` everywhere, ``source_value`` at source."""

    def init(num_vertices: int, source: Optional[int]) -> np.ndarray:
        prop = np.full(num_vertices, fill, dtype=np.float64)
        if source is not None:
            prop[source] = source_value
        return prop

    return init


def _vertex_id_init(num_vertices: int, source: Optional[int]) -> np.ndarray:
    """CC starts every vertex labelled with its own id."""
    return np.arange(num_vertices, dtype=np.float64)


def _pagerank_init(num_vertices: int, source: Optional[int]) -> np.ndarray:
    """PR property is rank/deg; ranks start uniform at 1/N.

    The engine divides by out-degree when it installs ``cProp``; here we
    return plain 1/N and rely on the first Apply to normalize, matching the
    usual accelerator initialization where iteration 0 scatters 1/(N*deg).
    """
    if num_vertices == 0:
        return np.zeros(0, dtype=np.float64)
    return np.full(num_vertices, 1.0 / num_vertices, dtype=np.float64)


def _min_apply(prop: np.ndarray, t_prop: np.ndarray, c_prop: np.ndarray) -> np.ndarray:
    return np.minimum(prop, t_prop)


def _max_apply(prop: np.ndarray, t_prop: np.ndarray, c_prop: np.ndarray) -> np.ndarray:
    return np.maximum(prop, t_prop)


def _pagerank_apply(prop: np.ndarray, t_prop: np.ndarray, c_prop: np.ndarray) -> np.ndarray:
    """``(alpha + beta * tProp) / deg`` exactly as in Table 2."""
    deg = np.maximum(c_prop, 1.0)
    return (PR_ALPHA + PR_BETA * t_prop) / deg


BFS = AlgorithmSpec(
    name="BFS",
    process_edge=lambda u_prop, weight: u_prop + 1.0,
    reduce_op=ReduceOp.MIN,
    apply=_min_apply,
    initial_prop=_source_init(float("inf"), 0.0),
    uses_weights=False,
    process_edge_kind="add_one",
    apply_kind="min",
)

SSSP = AlgorithmSpec(
    name="SSSP",
    process_edge=lambda u_prop, weight: u_prop + weight,
    reduce_op=ReduceOp.MIN,
    apply=_min_apply,
    initial_prop=_source_init(float("inf"), 0.0),
    process_edge_kind="add_weight",
    apply_kind="min",
)

CC = AlgorithmSpec(
    name="CC",
    process_edge=lambda u_prop, weight: u_prop,
    reduce_op=ReduceOp.MIN,
    apply=_min_apply,
    initial_prop=_vertex_id_init,
    uses_weights=False,
    all_vertices_active_initially=True,
    needs_source=False,
    process_edge_kind="copy",
    apply_kind="min",
)

SSWP = AlgorithmSpec(
    name="SSWP",
    process_edge=lambda u_prop, weight: np.minimum(u_prop, weight),
    reduce_op=ReduceOp.MAX,
    apply=_max_apply,
    initial_prop=_source_init(0.0, float("inf")),
    process_edge_kind="min_weight",
    apply_kind="max",
)

PAGERANK = AlgorithmSpec(
    name="PR",
    process_edge=lambda u_prop, weight: u_prop,
    reduce_op=ReduceOp.SUM,
    apply=_pagerank_apply,
    initial_prop=_pagerank_init,
    uses_weights=False,
    uses_degree_cprop=True,
    all_vertices_active_initially=True,
    needs_source=False,
    default_max_iterations=10,
    process_edge_kind="copy",
    apply_kind="pagerank",
)

ALGORITHMS: Dict[str, AlgorithmSpec] = {
    spec.name: spec for spec in (BFS, SSSP, CC, SSWP, PAGERANK)
}


def algorithm_names() -> List[str]:
    """Names in the paper's presentation order: BFS, SSSP, CC, SSWP, PR."""
    return list(ALGORITHMS)


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up an algorithm spec by its Table 2 name (case-insensitive)."""
    key = name.upper()
    if key == "PAGERANK":
        key = "PR"
    if key not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; choose from {algorithm_names()}")
    return ALGORITHMS[key]
