"""Algorithm specification for the Vertex-Centric Programming Model.

Table 2 of the paper defines each algorithm by three application-defined
functions over an edge ``e = (u, v)``:

* ``Process_Edge(u.prop, e.weight)`` -- produces an edge result,
* ``Reduce(v.tProp, res)``           -- folds edge results into the
  destination's *temporary* property (always a simple min/max/accumulate,
  which is what makes the zero-stall Reduce Pipeline of Section 5.2.3
  possible),
* ``Apply(v.prop, v.tProp, v.cProp)`` -- produces the new property; the
  vertex is activated when it changes.

An :class:`AlgorithmSpec` carries both scalar forms (used by the reference
interpreter and the discrete-event micro-models) and vectorized numpy forms
(used by the functional engine).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Optional

import numpy as np

__all__ = ["ReduceOp", "AlgorithmSpec"]


class ReduceOp(enum.Enum):
    """The commutative, associative fold used in the Scatter phase.

    The paper's key observation (Section 5.2.3) is that every VCPM Reduce is
    one of a handful of single-instruction operations, so the Reduce Pipeline
    needs only one FALU stage.
    """

    MIN = "min"
    MAX = "max"
    SUM = "sum"

    @property
    def identity(self) -> float:
        """Value that leaves the fold unchanged."""
        if self is ReduceOp.MIN:
            return float("inf")
        if self is ReduceOp.MAX:
            return float("-inf")
        return 0.0

    @property
    def ufunc(self) -> np.ufunc:
        """Numpy ufunc whose ``.at`` form implements the atomic fold."""
        if self is ReduceOp.MIN:
            return np.minimum
        if self is ReduceOp.MAX:
            return np.maximum
        return np.add

    def scalar(self, accumulator: float, value: float) -> float:
        """Scalar fold, used by the event-driven Reduce Pipeline model."""
        if self is ReduceOp.MIN:
            return min(accumulator, value)
        if self is ReduceOp.MAX:
            return max(accumulator, value)
        return accumulator + value

    @property
    def is_monotonic(self) -> bool:
        """Whether repeated folds can only move the accumulator one way.

        Monotonic reduces (min/max) let the temporary property persist
        across iterations; SUM-based algorithms (PageRank) must reset it
        every iteration.
        """
        return self is not ReduceOp.SUM


@dataclasses.dataclass(frozen=True)
class AlgorithmSpec:
    """A graph algorithm expressed in the (push-based) VCPM of Algorithm 1.

    Attributes:
        name: short name, e.g. ``"BFS"``.
        process_edge: vectorized ``(u_prop, weight) -> edge result``.
        reduce_op: the fold applied to the destination's temporary property.
        apply: vectorized ``(prop, t_prop, c_prop) -> new prop``.
        initial_prop: ``(num_vertices, source) -> initial property array``.
        uses_weights: whether ``Process_Edge`` reads the edge weight (BFS/CC
            do not; their edge records can drop the weight field).
        uses_degree_cprop: whether ``cProp`` is the vertex out-degree (PR).
        all_vertices_active_initially: CC and PR start from every vertex.
        resets_tprop_each_iteration: derived from the reduce op; PR's SUM
            accumulator restarts every iteration.
        needs_source: whether a source/root vertex is meaningful.
        default_max_iterations: safety bound on iterations.
        process_edge_kind: opcode name for the compiled kernel tier
            (``"add_one"``/``"add_weight"``/``"copy"``/``"min_weight"``);
            ``None`` means the spec's ``process_edge`` is a free-form
            callable the native loops cannot represent, so the compiled
            tier falls back (warn-once) to the batched kernel.
        apply_kind: opcode name for the compiled Apply
            (``"min"``/``"max"``/``"pagerank"``); same fallback contract.
    """

    name: str
    process_edge: Callable[[np.ndarray, np.ndarray], np.ndarray]
    reduce_op: ReduceOp
    apply: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]
    initial_prop: Callable[[int, Optional[int]], np.ndarray]
    uses_weights: bool = True
    uses_degree_cprop: bool = False
    all_vertices_active_initially: bool = False
    needs_source: bool = True
    default_max_iterations: int = 1000
    process_edge_kind: Optional[str] = None
    apply_kind: Optional[str] = None

    @property
    def resets_tprop_each_iteration(self) -> bool:
        return not self.reduce_op.is_monotonic

    def initial_tprop(self, num_vertices: int) -> np.ndarray:
        """Temporary property array filled with the reduce identity."""
        return np.full(num_vertices, self.reduce_op.identity, dtype=np.float64)

    def process_edge_scalar(self, u_prop: float, weight: float) -> float:
        """Scalar ``Process_Edge`` (vectorized form applied to size-1 arrays)."""
        return float(
            self.process_edge(
                np.asarray([u_prop], dtype=np.float64),
                np.asarray([weight], dtype=np.float64),
            )[0]
        )

    def apply_scalar(self, prop: float, t_prop: float, c_prop: float) -> float:
        """Scalar ``Apply``."""
        return float(
            self.apply(
                np.asarray([prop], dtype=np.float64),
                np.asarray([t_prop], dtype=np.float64),
                np.asarray([c_prop], dtype=np.float64),
            )[0]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AlgorithmSpec({self.name}, reduce={self.reduce_op.value})"
