"""Functionally-sliced VCPM execution (Section 4.2.1's slicing technique).

When the temporary vertex properties exceed the Vertex Buffer, the graph is
processed one *destination slice* at a time: each Scatter pass touches only
the edges whose destination falls in the resident interval, re-reading the
active vertex data once per slice.  The timing layer models the cost; this
module executes the technique *functionally* so the invariant -- slicing
never changes results -- is testable end to end.

Since the sharded refactor this is a thin front over
:func:`repro.vcpm.partitioned.run_vcpm_partitioned`: VB slicing is the
``shards=1`` special case of the shard × slice composition (a single shard
covering ``[0, num_vertices)``, sliced by the VB plan).  Results are
bitwise-identical to the pre-refactor implementation.
"""

from __future__ import annotations

from typing import Optional

from ..graph.csr import CSRGraph
from .engine import VCPMResult
from .partitioned import run_vcpm_partitioned
from .spec import AlgorithmSpec

__all__ = ["run_vcpm_sliced"]


def run_vcpm_sliced(
    graph: CSRGraph,
    spec: AlgorithmSpec,
    vb_capacity_bytes: int,
    source: Optional[int] = 0,
    max_iterations: Optional[int] = None,
    pr_tolerance: float = 1e-7,
    tprop_bytes: int = 4,
) -> VCPMResult:
    """Execute ``spec`` slice by slice; results match the unsliced engine.

    Args:
        graph: input graph.
        vb_capacity_bytes: Vertex Buffer capacity determining the slice
            width (GraphDynS: 32 MB; pass something tiny to force slicing
            in tests).
        source, max_iterations, pr_tolerance: as in
            :func:`repro.vcpm.engine.run_vcpm`.
        tprop_bytes: bytes per temporary property entry.
    """
    return run_vcpm_partitioned(
        graph,
        spec,
        shards=1,
        vb_capacity_bytes=vb_capacity_bytes,
        source=source,
        max_iterations=max_iterations,
        pr_tolerance=pr_tolerance,
        tprop_bytes=tprop_bytes,
    )
