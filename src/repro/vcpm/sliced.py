"""Functionally-sliced VCPM execution (Section 4.2.1's slicing technique).

When the temporary vertex properties exceed the Vertex Buffer, the graph is
processed one *destination slice* at a time: each Scatter pass touches only
the edges whose destination falls in the resident interval, re-reading the
active vertex data once per slice.  The timing layer models the cost; this
module executes the technique *functionally* so the invariant -- slicing
never changes results -- is testable end to end.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.slicing import SlicePlan, plan_slices
from .engine import IterationTrace, VCPMResult, gather_edge_indices
from .spec import AlgorithmSpec

__all__ = ["run_vcpm_sliced"]


def run_vcpm_sliced(
    graph: CSRGraph,
    spec: AlgorithmSpec,
    vb_capacity_bytes: int,
    source: Optional[int] = 0,
    max_iterations: Optional[int] = None,
    pr_tolerance: float = 1e-7,
    tprop_bytes: int = 4,
) -> VCPMResult:
    """Execute ``spec`` slice by slice; results match the unsliced engine.

    Args:
        graph: input graph.
        vb_capacity_bytes: Vertex Buffer capacity determining the slice
            width (GraphDynS: 32 MB; pass something tiny to force slicing
            in tests).
        source, max_iterations, pr_tolerance: as in
            :func:`repro.vcpm.engine.run_vcpm`.
        tprop_bytes: bytes per temporary property entry.
    """
    num_vertices = graph.num_vertices
    if max_iterations is None:
        max_iterations = spec.default_max_iterations
    if not spec.needs_source:
        source = None
    elif source is None:
        raise ValueError(f"{spec.name} requires a source vertex")

    plan: SlicePlan = plan_slices(num_vertices, vb_capacity_bytes, tprop_bytes)
    prop = spec.initial_prop(num_vertices, source)
    t_prop = spec.initial_tprop(num_vertices)
    deg = graph.out_degree().astype(np.float64)
    c_prop = deg if spec.uses_degree_cprop else np.zeros(num_vertices)
    if spec.uses_degree_cprop and num_vertices:
        prop = prop / np.maximum(c_prop, 1.0)

    if spec.all_vertices_active_initially:
        active = np.arange(num_vertices, dtype=np.int64)
    elif source is not None and num_vertices:
        active = np.asarray([source], dtype=np.int64)
    else:
        active = np.zeros(0, dtype=np.int64)

    traces: List[IterationTrace] = []
    converged = False

    for iteration in range(max_iterations):
        if active.size == 0:
            converged = True
            break

        edge_idx = gather_edge_indices(graph.offsets, active)
        edge_dst = graph.edges[edge_idx]
        edge_w = graph.weights[edge_idx].astype(np.float64)
        degrees = graph.offsets[active + 1] - graph.offsets[active]
        u_prop = np.repeat(prop[active], degrees)
        t_prop_before = t_prop.copy()

        # One Scatter pass per slice: only edges landing in the resident
        # interval are reduced, while the whole active set is re-walked
        # (the re-read cost the timing model charges).
        for slice_ in plan:
            in_slice = (edge_dst >= slice_.vertex_lo) & (
                edge_dst < slice_.vertex_hi
            )
            if not np.any(in_slice):
                continue
            results = spec.process_edge(u_prop[in_slice], edge_w[in_slice])
            spec.reduce_op.ufunc.at(t_prop, edge_dst[in_slice], results)

        modified = np.flatnonzero(t_prop != t_prop_before)

        apply_res = spec.apply(prop, t_prop, c_prop)
        activated_mask = apply_res != prop
        activated = np.flatnonzero(activated_mask)
        old_prop = prop
        prop = np.where(activated_mask, apply_res, prop)

        traces.append(
            IterationTrace(
                iteration=iteration,
                num_active=int(active.size),
                num_edges=int(edge_dst.size),
                num_modified=int(modified.size),
                num_activated=int(activated.size),
            )
        )

        if spec.resets_tprop_each_iteration:
            t_prop = spec.initial_tprop(num_vertices)
            if float(np.abs(prop - old_prop).sum()) < pr_tolerance:
                converged = True
                break
            active = np.arange(num_vertices, dtype=np.int64)
        else:
            active = activated
            if active.size == 0:
                converged = True
                break

    return VCPMResult(
        algorithm=spec.name,
        graph_name=graph.name,
        properties=prop,
        iterations=traces,
        converged=converged,
        source=source,
    )
