"""The optimized Dispatching/Processing programming model (Algorithm 2).

GraphDynS's software half: each phase is decoupled into a *Dispatching* stage
and a *Processing* stage, and the Apply phase additionally reads the offset
array sequentially so that each activated vertex carries its ``offset`` and
``edgeCnt`` into the next iteration's Scatter phase.  The result is that:

* workload size is known before dispatch (-> workload-balanced dispatch),
* edge prefetch addresses are known exactly (-> exact prefetching),
* edge records no longer need a ``src_vid`` field (-> less traffic/storage).

This module is a faithful executable rendering of Algorithm 2 (scalar but
numpy-assisted).  It must compute exactly what :func:`repro.vcpm.engine.
run_vcpm` computes -- the integration tests assert bit-identical properties
-- while exposing the dispatch-level artifacts (:class:`ActiveVertex`
records and vertex-list workloads) consumed by the hardware model.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..graph.csr import CSRGraph
from .spec import AlgorithmSpec

__all__ = [
    "ActiveVertex",
    "VertexListWorkload",
    "OptimizedRunResult",
    "dispatch_scatter",
    "dispatch_apply",
    "run_optimized",
]


@dataclasses.dataclass(frozen=True)
class ActiveVertex:
    """Active vertex data as defined in Section 4.1.1.

    ``(v.prop, offset, edgeCnt)`` replaces the bare vertex id of classic
    PB-VCPM.  Note the deliberate absence of the vertex id itself: the paper
    stresses that ``u.vid`` is no longer stored or streamed.
    """

    prop: float
    offset: int
    edge_cnt: int


@dataclasses.dataclass(frozen=True)
class VertexListWorkload:
    """Apply-phase workload: a contiguous vertex id interval.

    Mirrors Algorithm 2's ``dispatch(vListStartID, vListSize)``.
    """

    start_id: int
    size: int


def dispatch_scatter(
    prop: np.ndarray, offsets: np.ndarray, active_ids: np.ndarray
) -> List[ActiveVertex]:
    """Dispatching stage of the Scatter phase (Algorithm 2 lines 1-3)."""
    return [
        ActiveVertex(
            prop=float(prop[u]),
            offset=int(offsets[u]),
            edge_cnt=int(offsets[u + 1] - offsets[u]),
        )
        for u in active_ids
    ]


def dispatch_apply(
    num_vertices: int, v_list_size: int
) -> List[VertexListWorkload]:
    """Dispatching stage of the Apply phase (Algorithm 2 lines 8-10)."""
    if v_list_size < 1:
        raise ValueError("v_list_size must be >= 1")
    return [
        VertexListWorkload(start_id=start, size=min(v_list_size, num_vertices - start))
        for start in range(0, num_vertices, v_list_size)
    ]


@dataclasses.dataclass
class OptimizedRunResult:
    """Result of an Algorithm 2 run, plus dispatch-stage statistics."""

    properties: np.ndarray
    num_iterations: int
    converged: bool
    scatter_dispatches: int
    apply_dispatches: int
    edges_processed: int


def run_optimized(
    graph: CSRGraph,
    spec: AlgorithmSpec,
    source: Optional[int] = 0,
    max_iterations: Optional[int] = None,
    v_list_size: int = 8,
    pr_tolerance: float = 1e-7,
    kernel: str = "scalar",
) -> OptimizedRunResult:
    """Execute Algorithm 2 end to end.

    With ``kernel="scalar"`` (the retained reference) the processing
    stages loop over dispatched records exactly as the pseudocode does.
    ``kernel="batched"`` (alias ``"vectorized"``) routes through
    :func:`repro.kernels.run_optimized_batched`, whose array rendering of
    the same stages is bit-identical (asserted in tests) and orders of
    magnitude faster on proxy-scale graphs.  ``kernel="compiled"`` runs
    the Scatter/Apply processing stages as native code
    (:func:`repro.kernels.compiled.run_optimized_compiled`), falling back
    to the batched kernel with a single
    :class:`~repro.kernels.tiers.KernelFallbackWarning` when no native
    provider is available or the spec lacks opcode metadata.
    ``kernel="auto"`` (or ``None``) resolves through the tier registry
    (ambient :func:`~repro.kernels.tiers.use_tier` scope, then
    ``$REPRO_KERNEL_TIER``, then best-available).
    """
    from ..kernels.tiers import resolve_tier, warn_fallback

    if kernel in (None, "auto", "vectorized", "compiled"):
        tier = resolve_tier(kernel)
        kernel = {"scalar": "scalar", "vectorized": "batched", "compiled": "compiled"}[tier]
    if kernel == "compiled":
        from ..kernels import compiled as _compiled

        if _compiled.get_provider() is not None and _compiled.alg2_supported(spec):
            return _compiled.run_optimized_compiled(
                graph,
                spec,
                source=source,
                max_iterations=max_iterations,
                v_list_size=v_list_size,
                pr_tolerance=pr_tolerance,
            )
        warn_fallback(
            "alg2:compiled-unsupported:{}".format(spec.name),
            "compiled Algorithm 2 kernel unavailable for spec {!r} "
            "(missing native provider or opcode metadata); falling back "
            "to the batched kernel. Results are identical.".format(spec.name),
        )
        kernel = "batched"
    if kernel == "batched":
        from ..kernels.scatter_apply import run_optimized_batched

        return run_optimized_batched(
            graph,
            spec,
            source=source,
            max_iterations=max_iterations,
            v_list_size=v_list_size,
            pr_tolerance=pr_tolerance,
        )
    if kernel != "scalar":
        raise ValueError(
            f"unknown kernel {kernel!r}; expected 'scalar', 'batched', "
            f"'vectorized', 'compiled' or 'auto'"
        )
    num_vertices = graph.num_vertices
    if max_iterations is None:
        max_iterations = spec.default_max_iterations
    if not spec.needs_source:
        source = None

    prop = spec.initial_prop(num_vertices, source)
    t_prop = spec.initial_tprop(num_vertices)
    deg = graph.out_degree().astype(np.float64)
    c_prop = deg if spec.uses_degree_cprop else np.zeros(num_vertices)
    if spec.uses_degree_cprop and num_vertices:
        prop = prop / np.maximum(c_prop, 1.0)

    if spec.all_vertices_active_initially:
        active_ids = np.arange(num_vertices, dtype=np.int64)
    elif source is not None and num_vertices:
        active_ids = np.asarray([source], dtype=np.int64)
    else:
        active_ids = np.zeros(0, dtype=np.int64)

    scatter_dispatches = 0
    apply_dispatches = 0
    edges_processed = 0
    converged = False
    completed_iterations = 0

    for _ in range(max_iterations):
        if active_ids.size == 0:
            converged = True
            break

        # --- Scatter: dispatching stage ---
        records = dispatch_scatter(prop, graph.offsets, active_ids)
        scatter_dispatches += len(records)

        # --- Scatter: processing stage (lines 4-7) ---
        for record in records:
            lo, hi = record.offset, record.offset + record.edge_cnt
            for idx in range(lo, hi):
                v = int(graph.edges[idx])
                res = spec.process_edge_scalar(
                    record.prop, float(graph.weights[idx])
                )
                t_prop[v] = spec.reduce_op.scalar(t_prop[v], res)
                edges_processed += 1

        # --- Apply: dispatching stage ---
        workloads = dispatch_apply(num_vertices, v_list_size)
        apply_dispatches += len(workloads)

        # --- Apply: processing stage (lines 11-18) ---
        old_prop = prop.copy()
        next_active: List[int] = []
        for workload in workloads:
            for vid in range(workload.start_id, workload.start_id + workload.size):
                apply_res = spec.apply_scalar(prop[vid], t_prop[vid], c_prop[vid])
                if prop[vid] != apply_res:
                    prop[vid] = apply_res
                    # Activation carries (prop, offset, edgeCnt); the ids
                    # here stand in for those records.
                    next_active.append(vid)

        completed_iterations += 1
        if spec.resets_tprop_each_iteration:
            t_prop = spec.initial_tprop(num_vertices)
            delta = float(np.abs(prop - old_prop).sum())
            if delta < pr_tolerance:
                converged = True
                break
            active_ids = np.arange(num_vertices, dtype=np.int64)
        else:
            active_ids = np.asarray(next_active, dtype=np.int64)
            if active_ids.size == 0:
                converged = True
                break

    return OptimizedRunResult(
        properties=prop,
        num_iterations=completed_iterations,
        converged=converged,
        scatter_dispatches=scatter_dispatches,
        apply_dispatches=apply_dispatches,
        edges_processed=edges_processed,
    )
