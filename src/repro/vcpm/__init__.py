"""Vertex-Centric Programming Model: specs, algorithms, engines, references."""

from .spec import AlgorithmSpec, ReduceOp
from .algorithms import (
    ALGORITHMS,
    BFS,
    CC,
    PAGERANK,
    PR_ALPHA,
    PR_BETA,
    SSSP,
    SSWP,
    algorithm_names,
    get_algorithm,
)
from .engine import (
    IterationData,
    IterationObserver,
    IterationTrace,
    VCPMResult,
    gather_edge_indices,
    run_vcpm,
)
from .incremental import (
    IncrementalOutcome,
    run_vcpm_incremental,
    supports_delta,
)
from .optimized import (
    ActiveVertex,
    OptimizedRunResult,
    VertexListWorkload,
    dispatch_apply,
    dispatch_scatter,
    run_optimized,
)
from .partitioned import (
    ShardRunner,
    ShardScatterTask,
    run_vcpm_partitioned,
    scatter_shard_task,
)
from .pull import run_vcpm_pull
from .sliced import run_vcpm_sliced
from .extensions import (
    DEGREE_COUNT,
    EXTENSION_ALGORITHMS,
    MAX_INCOMING,
    REACHABILITY,
    SPMV,
    get_extension,
)
from . import reference

__all__ = [
    "AlgorithmSpec",
    "ReduceOp",
    "ALGORITHMS",
    "BFS",
    "SSSP",
    "CC",
    "SSWP",
    "PAGERANK",
    "PR_ALPHA",
    "PR_BETA",
    "algorithm_names",
    "get_algorithm",
    "IterationData",
    "IterationObserver",
    "IterationTrace",
    "VCPMResult",
    "gather_edge_indices",
    "run_vcpm",
    "IncrementalOutcome",
    "run_vcpm_incremental",
    "supports_delta",
    "ActiveVertex",
    "OptimizedRunResult",
    "VertexListWorkload",
    "dispatch_apply",
    "dispatch_scatter",
    "run_optimized",
    "run_vcpm_pull",
    "run_vcpm_sliced",
    "ShardRunner",
    "ShardScatterTask",
    "run_vcpm_partitioned",
    "scatter_shard_task",
    "SPMV",
    "DEGREE_COUNT",
    "MAX_INCOMING",
    "REACHABILITY",
    "EXTENSION_ALGORITHMS",
    "get_extension",
    "reference",
]
