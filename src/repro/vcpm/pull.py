"""Pull-based VCPM execution.

The paper's GraphDynS (like Graphicionado's main mode) is push-based:
active sources scatter along out-edges.  The *pull* dual -- every
destination gathers over its in-edges -- trades atomic-free reduction for
redundant edge reads, and is how GPU frameworks typically run PageRank.
The Gunrock model's pull path and the push-vs-pull example build on this
module.

Semantics: identical fixpoints to :func:`repro.vcpm.engine.run_vcpm` (the
tests assert it), but the amount of edge work per iteration differs --
pull processes the in-edges of every *checked* vertex, not the out-edges
of every *active* one.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..graph.csr import CSRGraph
from .engine import IterationTrace, VCPMResult, gather_edge_indices
from .spec import AlgorithmSpec

__all__ = ["run_vcpm_pull"]


def run_vcpm_pull(
    graph: CSRGraph,
    spec: AlgorithmSpec,
    source: Optional[int] = 0,
    max_iterations: Optional[int] = None,
    pr_tolerance: float = 1e-7,
) -> VCPMResult:
    """Execute ``spec`` in pull mode.

    Every iteration gathers over the in-edges of all not-yet-stable
    vertices.  Monotonic algorithms check every vertex whose property might
    still improve (conservatively: all of them each iteration -- the pull
    penalty); accumulating algorithms behave exactly like their push form.
    """
    num_vertices = graph.num_vertices
    if max_iterations is None:
        max_iterations = spec.default_max_iterations
    if not spec.needs_source:
        source = None
    elif source is None:
        raise ValueError(f"{spec.name} requires a source vertex")
    elif num_vertices and not (0 <= source < num_vertices):
        raise ValueError(f"source {source} out of range")

    reverse = graph.reverse()
    prop = spec.initial_prop(num_vertices, source)
    deg = graph.out_degree().astype(np.float64)
    c_prop = deg if spec.uses_degree_cprop else np.zeros(num_vertices)
    if spec.uses_degree_cprop and num_vertices:
        prop = prop / np.maximum(c_prop, 1.0)

    all_vertices = np.arange(num_vertices, dtype=np.int64)
    traces: List[IterationTrace] = []
    converged = False

    for iteration in range(max_iterations):
        # Gather: tProp[v] = reduce over in-edges (u -> v).
        t_prop = spec.initial_tprop(num_vertices)
        edge_idx = gather_edge_indices(reverse.offsets, all_vertices)
        gather_src = reverse.edges[edge_idx]  # the u of each in-edge
        in_counts = np.diff(reverse.offsets)
        gather_dst = np.repeat(all_vertices, in_counts)
        weights = reverse.weights[edge_idx].astype(np.float64)
        results = spec.process_edge(prop[gather_src], weights)
        t_prop_before = t_prop.copy()
        spec.reduce_op.ufunc.at(t_prop, gather_dst, results)
        modified = np.flatnonzero(t_prop != t_prop_before)

        apply_res = spec.apply(prop, t_prop, c_prop)
        activated_mask = apply_res != prop
        activated = np.flatnonzero(activated_mask)
        old_prop = prop
        prop = np.where(activated_mask, apply_res, prop)

        traces.append(
            IterationTrace(
                iteration=iteration,
                num_active=num_vertices,
                num_edges=int(gather_dst.size),
                num_modified=int(modified.size),
                num_activated=int(activated.size),
            )
        )

        if spec.resets_tprop_each_iteration:
            delta = float(np.abs(prop - old_prop).sum())
            if delta < pr_tolerance:
                converged = True
                break
        else:
            if activated.size == 0:
                converged = True
                break

    return VCPMResult(
        algorithm=spec.name,
        graph_name=graph.name,
        properties=prop,
        iterations=traces,
        converged=converged,
        source=source,
    )
