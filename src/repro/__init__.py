"""GraphDynS reproduction (MICRO 2019).

A hardware/software co-design model for graph-analytics acceleration:
decoupled datapath + data-aware dynamic scheduling, with Graphicionado and
Gunrock-on-V100 baselines, reproducing the paper's full evaluation.

Quick start::

    from repro import GraphDynS, get_algorithm, load_dataset

    graph = load_dataset("LJ")
    result, report = GraphDynS().run(graph, get_algorithm("SSSP"), source=0)
    print(report.gteps, "GTEPS")
"""

from .graph.csr import CSRGraph
from .graph.datasets import load as load_dataset
from .graph.generators import power_law_graph, rmat_graph
from .graphdyns.accelerator import GraphDynS
from .graphdyns.config import GraphDynSConfig
from .graphicionado.accelerator import Graphicionado
from .gpu.gunrock import Gunrock
from .metrics.counters import RunReport
from .obs import TraceRecorder, get_recorder, use_recorder
from .vcpm.algorithms import ALGORITHMS, algorithm_names, get_algorithm
from .vcpm.engine import run_vcpm
from . import backends

__version__ = "1.1.0"

__all__ = [
    "backends",
    "CSRGraph",
    "load_dataset",
    "power_law_graph",
    "rmat_graph",
    "GraphDynS",
    "GraphDynSConfig",
    "Graphicionado",
    "Gunrock",
    "RunReport",
    "TraceRecorder",
    "get_recorder",
    "use_recorder",
    "ALGORITHMS",
    "algorithm_names",
    "get_algorithm",
    "run_vcpm",
    "__version__",
]
