"""Public alias of the simulation daemon: ``from repro import serve``.

The implementation lives in :mod:`repro.harness.serve` (next to the run
service it wraps); this module is the stable import surface promised by
the docs and the ``repro serve`` CLI.
"""

from .harness.admission import (
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
    executor_for_load,
)
from .harness.journal import JobJournal, JobRecord, JournalError
from .harness.serve import (
    DaemonConfig,
    DaemonStats,
    Job,
    JobSpec,
    JobValidationError,
    SimulationDaemon,
    fetch_result,
    http_json,
    submit_job,
    wait_for_job,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "DaemonConfig",
    "DaemonStats",
    "Job",
    "JobJournal",
    "JobRecord",
    "JobSpec",
    "JobValidationError",
    "JournalError",
    "SimulationDaemon",
    "TokenBucket",
    "executor_for_load",
    "fetch_result",
    "http_json",
    "submit_job",
    "wait_for_job",
]
