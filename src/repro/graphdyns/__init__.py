"""GraphDynS accelerator: configuration, components, timing, top level."""

from .config import DEFAULT_CONFIG, GraphDynSConfig
from .dispatcher import Dispatcher, EdgeWorkload, VertexWorkload
from .prefetcher import EPBLayout, Prefetcher
from .processor import EdgeResult, Processor
from .updater import Updater, UpdatingElement
from .timing import GraphDynSTimingModel
from .micro import MicroScatterResult, simulate_scatter_microarch
from .accelerator import ComponentRunResult, GraphDynS

__all__ = [
    "DEFAULT_CONFIG",
    "GraphDynSConfig",
    "Dispatcher",
    "EdgeWorkload",
    "VertexWorkload",
    "EPBLayout",
    "Prefetcher",
    "EdgeResult",
    "Processor",
    "Updater",
    "UpdatingElement",
    "GraphDynSTimingModel",
    "MicroScatterResult",
    "simulate_scatter_microarch",
    "ComponentRunResult",
    "GraphDynS",
]
