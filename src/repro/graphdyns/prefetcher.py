"""Prefetcher: Vpref and Epref (Sections 4.2.1 and 5.2.1).

Component-level model of exact prefetching.  The five-step flow of
Section 5.2.1 is made explicit:

1. Vpref issues the sequential active-vertex-array request,
2. Vpref receives ``(prop, offset, edgeCnt)`` records,
3. Vpref hands ``(offset, edgeCnt)`` to Epref,
4. Epref issues exact, coalesced edge requests,
5. Epref banks edge data into the EPB with the same placement the
   Dispatcher used for the matching workloads (Fig. 4c).

The component model produces the per-PE EPB layout so tests can verify that
every PE reads exactly its dispatched edges in order.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from ..core.prefetch import PrefetchPlan, plan_exact_prefetch
from ..obs import get_recorder
from ..vcpm.optimized import ActiveVertex
from .config import DEFAULT_CONFIG, GraphDynSConfig
from .dispatcher import EdgeWorkload

__all__ = ["EPBLayout", "Prefetcher"]


@dataclasses.dataclass
class EPBLayout:
    """Edge-index contents of each EPB RAM, in arrival order."""

    per_ram: List[List[int]]

    def ram_of_pe(self, pe: int) -> List[int]:
        """EPB RAM ``i`` feeds PE ``i`` exclusively (Section 5.2.2)."""
        return self.per_ram[pe]


class Prefetcher:
    """Vpref + Epref pair."""

    def __init__(self, config: GraphDynSConfig = DEFAULT_CONFIG) -> None:
        self.config = config
        self.edge_requests = 0
        self.edges_fetched = 0

    def plan(
        self, records: Sequence[ActiveVertex], weighted: bool = True
    ) -> PrefetchPlan:
        """The exact access-pattern plan for a batch of active vertices."""
        offsets = np.asarray([r.offset for r in records], dtype=np.int64)
        counts = np.asarray([r.edge_cnt for r in records], dtype=np.int64)
        plan = plan_exact_prefetch(offsets, counts, weighted)
        self.edge_requests += plan.coalesced_runs
        self.edges_fetched += int(counts.sum())
        rec = get_recorder()
        if rec.enabled:
            rec.counter("graphdyns.prefetcher.requests").add(
                plan.coalesced_runs
            )
            rec.counter("graphdyns.prefetcher.edges").add(int(counts.sum()))
        return plan

    def arrange_epb(self, workloads: Sequence[EdgeWorkload]) -> EPBLayout:
        """Place fetched edges into EPB RAMs mirroring the dispatch.

        Epref "adopts the same workload-balance strategy of DE to arrange
        the edge data in EPB", so PE_i finds its edges in RAM_i in workload
        order.
        """
        per_ram: List[List[int]] = [[] for _ in range(self.config.num_pes)]
        for workload in workloads:
            per_ram[workload.pe].extend(
                range(workload.offset, workload.offset + workload.count)
            )
        return EPBLayout(per_ram=per_ram)
