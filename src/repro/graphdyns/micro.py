"""Event-driven micro-model of one Scatter phase.

The per-iteration timing layer (:mod:`repro.graphdyns.timing`) uses
closed-form contention maxima.  This module replays the same Scatter phase
through an explicit cycle-by-cycle pipeline -- PE issue slots, crossbar
arbitration, one-op-per-cycle Reduce Pipelines with elastic FIFOs -- so the
analytic model can be validated against an exact simulation on small
inputs (see ``tests/test_graphdyns_micro.py``).

The model:

* each PE issues up to ``n_simt`` edge results per cycle from its workload
  queue;
* each result routes to UE ``dst % num_ues`` through a bounded FIFO
  (``ue_queue_depth`` entries); a full FIFO back-pressures the PE, which
  re-tries the remaining lanes next cycle;
* each UE retires one result per cycle (the zero-stall Reduce Pipeline).

Cycle counts therefore reflect issue bandwidth, UE serialization, and
finite buffering -- the three effects the elastic crossbar formula
``max(groups, max_ue_load)`` approximates.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, List, Sequence

import numpy as np

from .config import DEFAULT_CONFIG, GraphDynSConfig

__all__ = ["MicroScatterResult", "simulate_scatter_microarch"]


@dataclasses.dataclass(frozen=True)
class MicroScatterResult:
    """Outcome of the event-driven Scatter replay."""

    cycles: int
    results_delivered: int
    backpressure_events: int
    max_ue_queue_occupancy: int

    @property
    def throughput(self) -> float:
        """Edge results retired per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.results_delivered / self.cycles


def simulate_scatter_microarch(
    pe_streams: Sequence[np.ndarray],
    config: GraphDynSConfig = DEFAULT_CONFIG,
    ue_queue_depth: int = 4,
    max_cycles: int = 10_000_000,
    engine: str = "event",
) -> MicroScatterResult:
    """Replay destination streams through the issue/crossbar/UE pipeline.

    Args:
        pe_streams: for each PE, the destination vertex ids of its edge
            results in processing order (what the Dispatcher + S2V
            produced).
        config: hardware geometry (lane count, UE count).
        ue_queue_depth: FIFO entries between each crossbar output and its
            Reduce Pipeline.
        max_cycles: safety bound.
        engine: ``"event"`` replays cycle by cycle (the retained
            reference below); ``"vectorized"`` computes the bit-identical
            result through :func:`repro.kernels.
            simulate_scatter_microarch_vectorized`'s closed-form drain
            schedule; ``"compiled"`` uses the same closed form but drains
            any back-pressured stream through the native event loop of
            the compiled kernel tier; ``"auto"`` (or ``None``) resolves
            through :func:`repro.kernels.tiers.resolve_tier` (``scalar``
            maps to the event reference).
    """
    if engine in (None, "auto"):
        from ..kernels.tiers import resolve_tier

        engine = {"scalar": "event", "vectorized": "vectorized", "compiled": "compiled"}[
            resolve_tier(engine)
        ]
    if engine in ("vectorized", "compiled"):
        from ..kernels.micro_drain import (
            simulate_scatter_microarch_vectorized,
        )

        return simulate_scatter_microarch_vectorized(
            pe_streams,
            config=config,
            ue_queue_depth=ue_queue_depth,
            max_cycles=max_cycles,
            event_engine="compiled" if engine == "compiled" else "python",
        )
    if engine != "event":
        raise ValueError(
            f"unknown engine {engine!r}; expected 'event', 'vectorized', "
            f"'compiled' or 'auto'"
        )
    num_ues = config.num_ues
    n_simt = config.n_simt
    queues: List[Deque[int]] = [deque() for _ in range(num_ues)]
    cursors = [0] * len(pe_streams)
    streams = [np.asarray(s, dtype=np.int64) for s in pe_streams]
    total = int(sum(s.size for s in streams))

    delivered = 0
    backpressure = 0
    max_occupancy = 0
    cycle = 0

    while delivered < total:
        if cycle >= max_cycles:
            raise RuntimeError("micro-model exceeded cycle budget")
        # Issue stage: each PE pushes up to n_simt results, stopping at the
        # first full UE queue (in-order lanes).
        for pe, stream in enumerate(streams):
            issued = 0
            while issued < n_simt and cursors[pe] < stream.size:
                dst = int(stream[cursors[pe]])
                queue = queues[dst % num_ues]
                if len(queue) >= ue_queue_depth:
                    backpressure += 1
                    break
                queue.append(dst)
                cursors[pe] += 1
                issued += 1
        # Retire stage: every UE's Reduce Pipeline takes one op per cycle.
        for queue in queues:
            if queue:
                queue.popleft()
                delivered += 1
        max_occupancy = max(
            max_occupancy, max((len(q) for q in queues), default=0)
        )
        cycle += 1

    return MicroScatterResult(
        cycles=cycle,
        results_delivered=delivered,
        backpressure_events=backpressure,
        max_ue_queue_occupancy=max_occupancy,
    )
