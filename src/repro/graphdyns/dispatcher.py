"""Dispatcher: 16 Dispatching Elements (Section 4.2.1, Fig. 4a).

Each DE reads active vertex records from its VPB bank and emits workload
descriptors to the PEs: whole edge lists below ``eThreshold``, even
sub-lists dealt across every PE above it.  This module is the component-
level model -- it materializes the actual descriptors (used by the
micro-tests and the example applications), while the timing layer uses the
closed-form equivalents in :mod:`repro.core.scheduling`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from ..obs import get_recorder
from ..vcpm.optimized import ActiveVertex
from .config import DEFAULT_CONFIG, GraphDynSConfig

__all__ = ["EdgeWorkload", "VertexWorkload", "Dispatcher"]


@dataclasses.dataclass(frozen=True)
class EdgeWorkload:
    """A contiguous chunk of one active vertex's edge list, bound to a PE."""

    pe: int
    source_prop: float
    offset: int
    count: int

    def edge_indices(self) -> np.ndarray:
        """Indices into the edge array this workload covers."""
        return np.arange(self.offset, self.offset + self.count, dtype=np.int64)


@dataclasses.dataclass(frozen=True)
class VertexWorkload:
    """Apply-phase workload: a vertex id interval bound to a PE."""

    pe: int
    start_id: int
    size: int


class Dispatcher:
    """The DE array."""

    def __init__(self, config: GraphDynSConfig = DEFAULT_CONFIG) -> None:
        self.config = config
        self.scheduling_ops = 0

    def dispatch_scatter(
        self, records: Sequence[ActiveVertex]
    ) -> List[EdgeWorkload]:
        """Distribute active-vertex edge lists to PEs (Section 5.1.1).

        DE_i forwards small lists to PE_i; records stream through the DEs
        round-robin.  Large lists split into even chunks of at most
        ``eThreshold`` edges dealt across all PEs.
        """
        cfg = self.config
        workloads: List[EdgeWorkload] = []
        for position, record in enumerate(records):
            if record.edge_cnt < cfg.e_threshold:
                pe = position % cfg.num_pes
                workloads.append(
                    EdgeWorkload(
                        pe=pe,
                        source_prop=record.prop,
                        offset=record.offset,
                        count=record.edge_cnt,
                    )
                )
                self.scheduling_ops += 1
            else:
                chunks = -(-record.edge_cnt // cfg.e_threshold)
                base, extra = divmod(record.edge_cnt, chunks)
                offset = record.offset
                for chunk in range(chunks):
                    size = base + (1 if chunk < extra else 0)
                    workloads.append(
                        EdgeWorkload(
                            pe=chunk % cfg.num_pes,
                            source_prop=record.prop,
                            offset=offset,
                            count=size,
                        )
                    )
                    offset += size
                    self.scheduling_ops += 1
        rec = get_recorder()
        if rec.enabled:
            rec.counter("graphdyns.dispatcher.records").add(len(records))
            rec.counter("graphdyns.dispatcher.workloads").add(len(workloads))
        return workloads

    def dispatch_apply(self, num_vertices: int) -> List[VertexWorkload]:
        """Generate strided vertex lists (Section 5.1.1, Apply phase).

        DE_i emits lists starting at ``i * vListSize`` with stride
        ``num_DE * vListSize``, so PE_i's vector accesses hit consecutive
        VBs without conflicts (Section 5.2.2).
        """
        cfg = self.config
        workloads: List[VertexWorkload] = []
        for start in range(0, num_vertices, cfg.v_list_size):
            de = (start // cfg.v_list_size) % cfg.num_dispatchers
            workloads.append(
                VertexWorkload(
                    pe=de % cfg.num_pes,
                    start_id=start,
                    size=min(cfg.v_list_size, num_vertices - start),
                )
            )
        return workloads

    def pe_loads(self, workloads: Sequence[EdgeWorkload]) -> np.ndarray:
        """Edges per PE for a dispatched batch (balance verification)."""
        loads = np.zeros(self.config.num_pes, dtype=np.int64)
        for workload in workloads:
            loads[workload.pe] += workload.count
        return loads
