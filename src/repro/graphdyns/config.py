"""GraphDynS hardware configuration (Table 3 and Section 5.1.3).

==============================  =======================================
Parameter                       Value
==============================  =======================================
Clock                           1 GHz
Dispatcher                      16 Dispatching Elements
Processor                       16 PEs x 8 SIMT lanes (128 lanes total)
eThreshold                      128 edges (split threshold)
eListSize                       16 edges (sub-list granularity)
vListSize                       8 vertices (Apply workload)
Updater                         128 UEs, 128-radix crossbar
Vertex Buffer                   128 x 256 KB dual-ported eDRAM (32 MB)
Ready-to-Update Bitmap          256 entries/UE, 1 bit per 256 vertices
AU buffer queues                4 x 16 entries per UE
Off-chip memory                 HBM 1.0, 512 GB/s
==============================  =======================================
"""

from __future__ import annotations

import dataclasses

from ..memory.hbm import HBM1_512GBS, HBMConfig

__all__ = ["GraphDynSConfig", "DEFAULT_CONFIG"]


@dataclasses.dataclass(frozen=True)
class GraphDynSConfig:
    """Tunable parameters of the GraphDynS model.

    The four ``enable_*`` switches select the scheduling optimizations for
    the Fig. 14c ablation: Workload Balancing (WB), Exact Prefetching (EP),
    Atomic Optimization (AO) and Update Scheduling (US).
    """

    frequency_hz: float = 1e9
    num_dispatchers: int = 16
    num_pes: int = 16
    n_simt: int = 8
    e_threshold: int = 128
    e_list_size: int = 16
    v_list_size: int = 8
    num_ues: int = 128
    vb_bytes_per_ue: int = 256 * 1024
    bitmap_block_size: int = 256
    au_queue_entries: int = 16
    active_record_bytes: int = 12
    hbm: HBMConfig = HBM1_512GBS

    enable_workload_balance: bool = True
    enable_exact_prefetch: bool = True
    enable_atomic_optimization: bool = True
    enable_update_scheduling: bool = True

    @property
    def total_lanes(self) -> int:
        """Peak edge throughput per cycle (128 -> the 128 GTEPS ceiling)."""
        return self.num_pes * self.n_simt

    @property
    def vb_total_bytes(self) -> int:
        """Aggregate Vertex Buffer capacity (32 MB in Table 3)."""
        return self.num_ues * self.vb_bytes_per_ue

    def with_ablation(
        self,
        workload_balance: bool = True,
        exact_prefetch: bool = True,
        atomic_optimization: bool = True,
        update_scheduling: bool = True,
    ) -> "GraphDynSConfig":
        """A copy with a chosen optimization subset (Fig. 14c's WB/WE/WEA/WEAU)."""
        return dataclasses.replace(
            self,
            enable_workload_balance=workload_balance,
            enable_exact_prefetch=exact_prefetch,
            enable_atomic_optimization=atomic_optimization,
            enable_update_scheduling=update_scheduling,
        )

    def with_num_ues(self, num_ues: int) -> "GraphDynSConfig":
        """A copy with a different UE count (Fig. 14e scaling study)."""
        return dataclasses.replace(self, num_ues=num_ues)


#: The configuration evaluated throughout Section 7.
DEFAULT_CONFIG = GraphDynSConfig()
