"""Per-iteration timing model of the GraphDynS accelerator.

Subscribes to the functional engine (:class:`~repro.vcpm.engine.
IterationObserver`) and converts each iteration's structural data into
cycles, following the hardware-platform stages of Fig. 3:

**Scatter phase** -- three concurrent sub-datapaths; the phase takes as long
as the slowest (they are pipelined against each other), plus the pipeline
fill latency of the first prefetch:

* *workload management*: Dispatcher balance determines the busiest PE; the
  S2V unit's lane packing sets edges/cycle per PE;
* *data access*: the Prefetcher's access patterns through the HBM model;
* *data update*: the crossbar serializes same-UE results; the Reduce
  Pipeline adds zero stalls (or conflict stalls with AO disabled).

**Apply phase** -- the Ready-to-Update Bitmap selects work (all vertices
with US disabled); vertex data streams from HBM; activations coalesce into
bursts.

The model is deliberately *structural*: every quantity (per-PE loads,
crossbar collisions, RAW hazards, coalesced run lengths, bitmap blocks)
comes from the actual data-dependent behaviour of the run, not from fitted
curves.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from ..core.coalesce import coalesced_store_bursts
from ..core.prefetch import plan_exact_prefetch
from ..core.scheduling import balanced_dispatch, hash_dispatch
from ..core.update_bitmap import ReadyToUpdateBitmap
from ..core.vectorize import vectorize_workloads
from ..graph.csr import CSRGraph
from ..graph.slicing import plan_slices
from ..memory.crossbar import Crossbar, grouped_duplicate_count
from ..memory.hbm import HBMModel
from ..memory.request import AccessPattern, Region
from ..memory.traffic import TrafficLedger
from ..metrics.counters import PhaseBreakdown, RunReport
from ..obs import get_recorder
from ..vcpm.engine import IterationData
from ..vcpm.spec import AlgorithmSpec
from .config import DEFAULT_CONFIG, GraphDynSConfig

__all__ = ["GraphDynSTimingModel"]

#: Extra cycles a RAW conflict costs a stall-on-conflict reducer (pipeline
#: depth minus one).
_RAW_STALL_CYCLES = 2.0

#: In-flight window for conflict detection without the zero-stall pipeline
#: (ops collide only inside one UE's short pipeline).
_RAW_CONFLICT_WINDOW = 8

#: DRAM fetch granularity for non-exact prefetching: without edgeCnt the
#: prefetcher rounds every edge list up to whole sectors.
_SECTOR_BYTES = 32


class GraphDynSTimingModel:
    """Accumulates modeled cycles for one (graph, algorithm) run."""

    def __init__(
        self,
        graph: CSRGraph,
        spec: AlgorithmSpec,
        config: GraphDynSConfig = DEFAULT_CONFIG,
    ) -> None:
        self.graph = graph
        self.spec = spec
        self.config = config
        self.hbm = HBMModel(config.hbm, owner="GraphDynS")
        self.traffic = TrafficLedger()
        self.crossbar = Crossbar(config.num_ues, config.total_lanes)
        self.slice_plan = plan_slices(
            graph.num_vertices, config.vb_total_bytes, tprop_bytes=4
        )
        self.phases: List[PhaseBreakdown] = []
        self.total_cycles = 0.0
        self.edges_processed = 0
        self.vertices_processed = 0
        self.scheduling_ops = 0
        self.update_operations = 0
        self.stall_cycles = 0.0

    # ------------------------------------------------------------------
    # Per-iteration hook
    # ------------------------------------------------------------------
    def on_iteration(self, data: IterationData) -> None:
        rec = get_recorder()
        with rec.span(
            "graphdyns.iteration", track="GraphDynS", iteration=data.iteration
        ):
            sched_before = self.scheduling_ops
            updates_before = self.update_operations
            scatter = self._scatter_cycles(data)
            if rec.enabled:
                # The three scatter sub-datapaths run concurrently
                # (the phase is their max), so they live on their own
                # tracks and overlap the covering "scatter" span.
                t0 = rec.clock.now
                rec.complete_span(
                    "scatter",
                    begin=t0,
                    duration=scatter.scatter_cycles,
                    track="GraphDynS",
                    edges=data.num_edges,
                )
                rec.complete_span(
                    "scatter.dispatch",
                    begin=t0,
                    duration=scatter.scatter_compute_cycles,
                    track="GraphDynS.compute",
                )
                rec.complete_span(
                    "scatter.prefetch",
                    begin=t0,
                    duration=scatter.scatter_memory_cycles,
                    track="GraphDynS.memory",
                )
                rec.complete_span(
                    "scatter.reduce",
                    begin=t0,
                    duration=scatter.scatter_update_cycles,
                    track="GraphDynS.update",
                )
                if scatter.scatter_stall_cycles:
                    rec.complete_span(
                        "scatter.raw_stall",
                        begin=t0
                        + scatter.scatter_update_cycles
                        - scatter.scatter_stall_cycles,
                        duration=scatter.scatter_stall_cycles,
                        track="GraphDynS.update",
                    )
            rec.clock.advance(scatter.scatter_cycles)
            apply_cycles = self._apply_cycles(data)
            if rec.enabled:
                rec.complete_span(
                    "apply",
                    begin=rec.clock.now,
                    duration=apply_cycles,
                    track="GraphDynS",
                    updates=self.update_operations - updates_before,
                )
                rec.counter("graphdyns.edges").add(data.num_edges)
                rec.counter("graphdyns.scheduling_ops").add(
                    self.scheduling_ops - sched_before
                )
                rec.counter("graphdyns.update_operations").add(
                    self.update_operations - updates_before
                )
                rec.counter("graphdyns.stall_cycles").add(
                    scatter.scatter_stall_cycles
                )
                rec.histogram("graphdyns.active_degree").observe_many(
                    data.active_degrees
                )
            rec.clock.advance(apply_cycles)
        phase = dataclasses.replace(scatter, apply_cycles=apply_cycles)
        self.phases.append(phase)
        self.total_cycles += phase.total_cycles
        self.edges_processed += data.num_edges

    # ------------------------------------------------------------------
    # Scatter phase
    # ------------------------------------------------------------------
    def _scatter_cycles(self, data: IterationData) -> PhaseBreakdown:
        cfg = self.config
        num_slices = self.slice_plan.num_slices

        if data.num_edges == 0:
            return PhaseBreakdown(
                iteration=data.iteration, scatter_cycles=0.0, apply_cycles=0.0
            )

        # --- Workload management sub-datapath ---
        if cfg.enable_workload_balance:
            outcome = balanced_dispatch(
                data.active_degrees, cfg.num_pes, cfg.e_threshold
            )
            # Sub-lists are bounded by eListSize for the S2V queues.
            chunk_sizes = np.minimum(data.active_degrees, cfg.e_list_size)
        else:
            outcome = hash_dispatch(
                data.active_ids, data.active_degrees, cfg.num_pes
            )
            chunk_sizes = data.active_degrees
        self.scheduling_ops += outcome.scheduling_ops
        vec = vectorize_workloads(chunk_sizes, cfg.n_simt, combine_small=True)
        lane_eff = max(vec.lane_efficiency, 1e-3)
        compute_cycles = outcome.max_load / (cfg.n_simt * lane_eff)

        # --- Data update sub-datapath (crossbar + Reduce Pipeline) ---
        xbar = self.crossbar.route_batch(data.edge_dst)
        update_cycles = float(xbar.cycles)
        stall = 0.0
        if not cfg.enable_atomic_optimization:
            conflicts = grouped_duplicate_count(
                data.edge_dst, _RAW_CONFLICT_WINDOW
            )
            stall = conflicts * _RAW_STALL_CYCLES
        update_cycles += stall
        self.stall_cycles += stall

        # --- Data access sub-datapath (Prefetcher + HBM) ---
        patterns = self._scatter_patterns(data, num_slices)
        service = self.hbm.service(patterns)
        self.traffic.add_all(patterns)
        memory_cycles = service.cycles

        startup = cfg.hbm.base_latency_cycles * num_slices
        if not cfg.enable_exact_prefetch:
            # Edge prefetch cannot start until the offset round-trip
            # completes (the serialization exact prefetching removes).
            startup += cfg.hbm.base_latency_cycles
        total = max(compute_cycles, update_cycles, memory_cycles) + startup
        return PhaseBreakdown(
            iteration=data.iteration,
            scatter_cycles=total,
            apply_cycles=0.0,
            scatter_compute_cycles=compute_cycles,
            scatter_memory_cycles=memory_cycles,
            scatter_update_cycles=update_cycles,
            scatter_stall_cycles=stall,
        )

    def _scatter_patterns(
        self, data: IterationData, num_slices: int
    ) -> List[AccessPattern]:
        cfg = self.config
        weighted = self.spec.uses_weights
        if cfg.enable_exact_prefetch:
            plan = plan_exact_prefetch(
                data.active_offsets, data.active_degrees, weighted
            )
            patterns = list(plan.patterns)
        else:
            # Without the exact indication the Prefetcher must chase the
            # offset array (one random sector per active vertex) and fetch
            # each edge list separately at sector granularity -- small
            # lists waste most of each fetch ("wasting up to half of the
            # bandwidth", Section 5.2.1).
            edge_bytes = 8 if weighted else 4
            num_active = data.num_active
            # Consecutive active ids keep some physical adjacency, so the
            # row buffer still merges part of the fragmentation; the waste
            # that remains is the sector padding itself.
            id_breaks = (
                1 + int(np.count_nonzero(np.diff(data.active_ids) > 1))
                if num_active > 1
                else max(num_active, 1)
            )
            patterns = [
                AccessPattern(
                    Region.ACTIVE_VERTEX,
                    total_bytes=num_active * 8,
                    run_bytes=float(max(num_active * 8, 1)),
                ),
                AccessPattern(
                    Region.OFFSET,
                    total_bytes=num_active * 8,
                    run_bytes=float(max(num_active * 8 / id_breaks, 8.0)),
                ),
            ]
            if data.num_edges:
                list_bytes = data.active_degrees * edge_bytes
                padded = (
                    -(-list_bytes // _SECTOR_BYTES)
                ) * _SECTOR_BYTES
                nonzero = padded[data.active_degrees > 0]
                total_padded = int(nonzero.sum())
                mean_run = (
                    float(total_padded / id_breaks)
                    if id_breaks
                    else float(_SECTOR_BYTES)
                )
                patterns.append(
                    AccessPattern(
                        Region.EDGE,
                        total_bytes=total_padded,
                        run_bytes=max(mean_run, float(_SECTOR_BYTES)),
                    )
                )
        if num_slices > 1:
            # Every slice re-reads the active vertex data (Section 7.2) and
            # sees shorter contiguous edge runs.
            scaled: List[AccessPattern] = []
            for pattern in patterns:
                if pattern.region is Region.ACTIVE_VERTEX:
                    scaled.append(
                        dataclasses.replace(
                            pattern,
                            total_bytes=pattern.total_bytes * num_slices,
                        )
                    )
                elif pattern.region is Region.EDGE:
                    scaled.append(
                        dataclasses.replace(
                            pattern,
                            run_bytes=max(
                                pattern.run_bytes / num_slices, 8.0
                            ),
                        )
                    )
                else:
                    scaled.append(pattern)
            patterns = scaled
        return patterns

    # ------------------------------------------------------------------
    # Apply phase
    # ------------------------------------------------------------------
    def _apply_cycles(self, data: IterationData) -> float:
        cfg = self.config
        num_vertices = data.num_vertices
        if num_vertices == 0:
            return 0.0

        if cfg.enable_update_scheduling:
            scheduled = ReadyToUpdateBitmap.scheduled_count(
                data.modified_ids, num_vertices, cfg.bitmap_block_size
            )
            run_bytes = float(cfg.bitmap_block_size) * 4.0
        else:
            scheduled = num_vertices
            run_bytes = float(num_vertices) * 4.0
        self.update_operations += scheduled
        self.vertices_processed += scheduled
        if scheduled == 0:
            return 0.0

        compute_cycles = scheduled / cfg.total_lanes

        prop_bytes = 8 if self.spec.uses_degree_cprop else 4
        patterns = [
            # Vertex property (+ degree for PR) reads, block-granular runs.
            AccessPattern(
                Region.VERTEX_PROP,
                total_bytes=scheduled * prop_bytes,
                run_bytes=run_bytes * prop_bytes / 4.0,
            ),
            # Offset array read for edgeCnt of activations (Algorithm 2).
            AccessPattern(
                Region.OFFSET, total_bytes=scheduled * 4, run_bytes=run_bytes
            ),
            # Updated properties written back together (conditional store).
            AccessPattern(
                Region.VERTEX_PROP,
                total_bytes=scheduled * 4,
                run_bytes=run_bytes,
                is_write=True,
            ),
        ]
        if data.num_activated:
            bursts, mean_burst = coalesced_store_bursts(
                data.num_activated,
                cfg.num_ues,
                cfg.au_queue_entries,
                cfg.active_record_bytes,
            )
            patterns.append(
                AccessPattern(
                    Region.ACTIVE_VERTEX,
                    total_bytes=data.num_activated * cfg.active_record_bytes,
                    run_bytes=max(mean_burst, float(cfg.active_record_bytes)),
                    is_write=True,
                )
            )
        service = self.hbm.service(patterns)
        self.traffic.add_all(patterns)
        return max(compute_cycles, service.cycles) + cfg.hbm.base_latency_cycles / 2.0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> RunReport:
        """Run-level summary consumed by the figure regenerators."""
        edge_bytes = 8 if self.spec.uses_weights else 4
        storage = self.graph.storage_bytes(
            edge_bytes=edge_bytes, include_source_ids=False
        )
        return RunReport(
            system="GraphDynS",
            algorithm=self.spec.name,
            graph_name=self.graph.name,
            cycles=self.total_cycles,
            frequency_hz=self.config.frequency_hz,
            edges_processed=self.edges_processed,
            vertices_processed=self.vertices_processed,
            iterations=len(self.phases),
            traffic=self.traffic,
            peak_bytes_per_cycle=self.config.hbm.peak_bytes_per_cycle,
            phases=self.phases,
            scheduling_ops=self.scheduling_ops,
            update_operations=self.update_operations,
            stall_cycles=self.stall_cycles,
            storage_bytes=storage,
        )
