"""Processor: 16 PEs, each an S2V unit feeding an 8-lane SIMT core.

The component-level model executes dispatched workloads functionally
(producing the edge-result stream the Updater consumes) and reports lane
occupancy.  It exists so integration tests can run a *complete*
component-level iteration -- Dispatcher -> Processor -> Updater -- and
compare against the vectorized engine.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..vcpm.spec import AlgorithmSpec
from .config import DEFAULT_CONFIG, GraphDynSConfig
from .dispatcher import EdgeWorkload, VertexWorkload

__all__ = ["EdgeResult", "Processor"]


@dataclasses.dataclass(frozen=True)
class EdgeResult:
    """One Process_Edge output headed for the Updater's crossbar."""

    dst: int
    value: float
    pe: int
    lane: int


class Processor:
    """The PE array."""

    def __init__(
        self,
        spec: AlgorithmSpec,
        config: GraphDynSConfig = DEFAULT_CONFIG,
    ) -> None:
        self.spec = spec
        self.config = config
        self.issue_slots = 0
        self.edges_processed = 0

    def process_scatter(
        self, graph: CSRGraph, workloads: Sequence[EdgeWorkload]
    ) -> List[EdgeResult]:
        """Run Process_Edge over each workload, SIMT-vector at a time.

        Results are emitted in issue order: all lanes of one slot, then the
        next slot -- the order the crossbar sees.
        """
        n_simt = self.config.n_simt
        results: List[EdgeResult] = []
        # Per-PE queues of (source_prop, edge_index) pairs, S2V-combined.
        pe_queues: List[List[Tuple[float, int]]] = [
            [] for _ in range(self.config.num_pes)
        ]
        for workload in workloads:
            queue = pe_queues[workload.pe]
            for edge_index in range(
                workload.offset, workload.offset + workload.count
            ):
                queue.append((workload.source_prop, edge_index))

        max_slots = max(
            (-(-len(q) // n_simt) for q in pe_queues), default=0
        )
        for slot in range(max_slots):
            for pe, queue in enumerate(pe_queues):
                lo = slot * n_simt
                for lane, (source_prop, edge_index) in enumerate(
                    queue[lo:lo + n_simt]
                ):
                    dst = int(graph.edges[edge_index])
                    weight = float(graph.weights[edge_index])
                    value = self.spec.process_edge_scalar(source_prop, weight)
                    results.append(
                        EdgeResult(dst=dst, value=value, pe=pe, lane=lane)
                    )
                    self.edges_processed += 1
        self.issue_slots += max_slots
        return results

    def process_apply(
        self,
        workloads: Sequence[VertexWorkload],
        prop: np.ndarray,
        t_prop: np.ndarray,
        c_prop: np.ndarray,
    ) -> List[Tuple[int, float]]:
        """Run Apply over dispatched vertex lists.

        Returns ``(vertex_id, apply_result)`` pairs in dispatch order; the
        Updater decides activation.
        """
        results: List[Tuple[int, float]] = []
        for workload in workloads:
            for vid in range(workload.start_id, workload.start_id + workload.size):
                results.append(
                    (
                        vid,
                        self.spec.apply_scalar(
                            float(prop[vid]), float(t_prop[vid]), float(c_prop[vid])
                        ),
                    )
                )
        return results
