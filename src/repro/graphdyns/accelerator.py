"""GraphDynS top-level accelerator model and public entry point.

Two execution modes:

* :meth:`GraphDynS.run` -- the evaluation path: the vectorized functional
  engine executes the algorithm while the timing model observes each
  iteration, yielding a :class:`~repro.metrics.counters.RunReport` with
  modeled cycles, traffic, utilization, and scheduling statistics.
* :meth:`GraphDynS.run_component_level` -- the validation path: every
  iteration flows through the explicit Dispatcher -> Prefetcher ->
  Processor -> crossbar -> Updater components (Fig. 3c/d, steps S1-S5).
  Slow, but it exercises the microarchitecture piece by piece; integration
  tests assert it computes the same properties as the functional engine.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..metrics.counters import RunReport
from ..obs import get_recorder
from ..vcpm.engine import VCPMResult, run_vcpm
from ..vcpm.optimized import dispatch_scatter as make_active_records
from ..vcpm.spec import AlgorithmSpec
from .config import DEFAULT_CONFIG, GraphDynSConfig
from .dispatcher import Dispatcher
from .prefetcher import Prefetcher
from .processor import Processor
from .timing import GraphDynSTimingModel
from .updater import Updater

__all__ = ["GraphDynS", "ComponentRunResult"]


@dataclasses.dataclass
class ComponentRunResult:
    """Outcome of a component-level (micro-model) run."""

    properties: np.ndarray
    num_iterations: int
    converged: bool
    scheduling_ops: int
    edges_processed: int


class GraphDynS:
    """The accelerator: hardware/software co-design with dynamic scheduling."""

    def __init__(self, config: GraphDynSConfig = DEFAULT_CONFIG) -> None:
        self.config = config

    def run(
        self,
        graph: CSRGraph,
        spec: AlgorithmSpec,
        source: Optional[int] = 0,
        max_iterations: Optional[int] = None,
    ) -> Tuple[VCPMResult, RunReport]:
        """Execute ``spec`` on ``graph`` and model the hardware timing.

        Returns:
            The functional result (bit-exact properties, iteration trace)
            and the modeled :class:`RunReport`.
        """
        timing = GraphDynSTimingModel(graph, spec, self.config)
        result = run_vcpm(
            graph,
            spec,
            source=source,
            max_iterations=max_iterations,
            observers=[timing],
        )
        return result, timing.report()

    def run_component_level(
        self,
        graph: CSRGraph,
        spec: AlgorithmSpec,
        source: Optional[int] = 0,
        max_iterations: Optional[int] = None,
    ) -> ComponentRunResult:
        """Execute through the explicit component micro-models.

        Intended for small graphs (every edge flows through Python
        objects); validates the datapath wiring of Fig. 3.
        """
        cfg = self.config
        num_vertices = graph.num_vertices
        if max_iterations is None:
            max_iterations = spec.default_max_iterations
        if not spec.needs_source:
            source = None

        prop = spec.initial_prop(num_vertices, source)
        deg = graph.out_degree().astype(np.float64)
        c_prop = deg if spec.uses_degree_cprop else np.zeros(num_vertices)
        if spec.uses_degree_cprop and num_vertices:
            prop = prop / np.maximum(c_prop, 1.0)

        if spec.all_vertices_active_initially:
            active = np.arange(num_vertices, dtype=np.int64)
        elif source is not None and num_vertices:
            active = np.asarray([source], dtype=np.int64)
        else:
            active = np.zeros(0, dtype=np.int64)

        dispatcher = Dispatcher(cfg)
        prefetcher = Prefetcher(cfg)
        processor = Processor(spec, cfg)
        updater = Updater(num_vertices, spec, cfg)

        rec = get_recorder()
        converged = False
        iterations = 0
        for _ in range(max_iterations):
            if active.size == 0:
                converged = True
                break

            with rec.span(
                "component.iteration",
                track="graphdyns.component",
                iteration=iterations,
                active=int(active.size),
            ):
                # --- Scatter: S1 read active vertex data, S2 dispatch,
                # S3/S4 read+process edges, S5 reduce into VB. ---
                records = make_active_records(prop, graph.offsets, active)
                with rec.span("component.dispatch", track="graphdyns.component"):
                    workloads = dispatcher.dispatch_scatter(records)
                with rec.span("component.prefetch", track="graphdyns.component"):
                    prefetcher.plan(records, weighted=spec.uses_weights)
                    prefetcher.arrange_epb(workloads)
                with rec.span("component.process", track="graphdyns.component"):
                    edge_results = processor.process_scatter(graph, workloads)
                with rec.span("component.reduce", track="graphdyns.component"):
                    updater.scatter_update(edge_results)

                # --- Apply: S1/S2 vertex workloads, S3/S4 apply, S5 update
                # and activate. ---
                with rec.span("component.apply", track="graphdyns.component"):
                    t_prop = updater.t_prop_array()
                    vertex_workloads = dispatcher.dispatch_apply(num_vertices)
                    apply_results = processor.process_apply(
                        vertex_workloads, prop, t_prop, c_prop
                    )
                    old_prop = prop.copy()
                    activated = updater.apply_update(apply_results, prop)
                updater.reset_for_next_iteration()
                if rec.enabled:
                    rec.counter("component.iterations").add()
                    rec.counter("component.workloads").add(len(workloads))
                    rec.counter("component.edge_results").add(len(edge_results))
                    rec.counter("component.activated").add(int(activated.size))
                # The micro-model carries no cycle estimate; tick once so
                # component spans still order on the shared timeline.
                rec.clock.tick()
            iterations += 1

            if spec.resets_tprop_each_iteration:
                if float(np.abs(prop - old_prop).sum()) < 1e-7:
                    converged = True
                    break
                active = np.arange(num_vertices, dtype=np.int64)
            else:
                active = activated
                if active.size == 0:
                    converged = True
                    break

        return ComponentRunResult(
            properties=prop,
            num_iterations=iterations,
            converged=converged,
            scheduling_ops=dispatcher.scheduling_ops,
            edges_processed=processor.edges_processed,
        )
