"""Updater: crossbar + 128 Updating Elements (VB, RB, RU, AU).

Component-level model of the data-update sub-datapath:

* the crossbar routes each :class:`~repro.graphdyns.processor.EdgeResult`
  to the UE owning its destination (``dst % num_ues``),
* each UE's Reducing Unit folds results into its Vertex Buffer partition
  through the zero-stall Reduce Pipeline,
* the Ready-to-Update Bitmap records modified blocks,
* the Activating Unit coalesces activations into store bursts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.coalesce import ActivationCoalescer
from ..core.reduce_pipeline import ZeroStallReducePipeline
from ..core.update_bitmap import ReadyToUpdateBitmap
from ..obs import get_recorder
from ..vcpm.spec import AlgorithmSpec
from .config import DEFAULT_CONFIG, GraphDynSConfig
from .processor import EdgeResult

__all__ = ["UpdatingElement", "Updater"]


class UpdatingElement:
    """One UE: a VB partition, its Reduce Pipeline, bitmap slice, and AU."""

    def __init__(
        self,
        index: int,
        spec: AlgorithmSpec,
        config: GraphDynSConfig,
    ) -> None:
        self.index = index
        self.spec = spec
        self.config = config
        self.pipeline = ZeroStallReducePipeline(spec.reduce_op)
        self.coalescer = ActivationCoalescer(
            queue_entries=config.au_queue_entries,
            record_bytes=config.active_record_bytes,
            name=f"ue{index}.au",
        )
        self.results_received = 0

    def reduce_batch(
        self, ops: Sequence[Tuple[int, float]], vb: Dict[int, float]
    ) -> Dict[int, float]:
        """Drain an op stream through the zero-stall pipeline."""
        self.results_received += len(ops)
        outcome = self.pipeline.run(ops, vb)
        assert outcome.stall_cycles == 0
        return outcome.vb


class Updater:
    """The crossbar plus UE array."""

    def __init__(
        self,
        num_vertices: int,
        spec: AlgorithmSpec,
        config: GraphDynSConfig = DEFAULT_CONFIG,
    ) -> None:
        self.num_vertices = num_vertices
        self.spec = spec
        self.config = config
        self.ues = [
            UpdatingElement(i, spec, config) for i in range(config.num_ues)
        ]
        self.bitmap = ReadyToUpdateBitmap(
            num_vertices, config.bitmap_block_size
        )
        # The distributed Vertex Buffer: tProp values live in the UE whose
        # index is vertex % num_ues; modeled as one dict per UE.
        self.vb: List[Dict[int, float]] = [dict() for _ in range(config.num_ues)]

    def ue_of(self, vertex: int) -> int:
        return vertex % self.config.num_ues

    def scatter_update(self, results: Sequence[EdgeResult]) -> np.ndarray:
        """Route edge results through the crossbar and reduce into the VB.

        Returns the vertex ids whose temporary property changed (the
        bitmap's new marks).
        """
        per_ue_ops: List[List[Tuple[int, float]]] = [
            [] for _ in range(self.config.num_ues)
        ]
        for result in results:
            per_ue_ops[self.ue_of(result.dst)].append((result.dst, result.value))

        modified: List[int] = []
        identity = self.spec.reduce_op.identity
        for ue, ops in zip(self.ues, per_ue_ops):
            if not ops:
                continue
            vb = self.vb[ue.index]
            before = {addr: vb.get(addr, identity) for addr, _ in ops}
            after = ue.reduce_batch(ops, vb)
            self.vb[ue.index] = after
            for addr in before:
                if after.get(addr, identity) != before[addr]:
                    modified.append(addr)
        modified_ids = np.asarray(sorted(set(modified)), dtype=np.int64)
        if modified_ids.size:
            self.bitmap.mark(modified_ids)
        rec = get_recorder()
        if rec.enabled:
            rec.counter("graphdyns.updater.results").add(len(results))
            rec.counter("graphdyns.updater.modified").add(
                int(modified_ids.size)
            )
        return modified_ids

    def t_prop_array(self) -> np.ndarray:
        """Materialize the distributed VB as a dense array (for checks)."""
        out = np.full(
            self.num_vertices, self.spec.reduce_op.identity, dtype=np.float64
        )
        for vb in self.vb:
            for vertex, value in vb.items():
                out[vertex] = value
        return out

    def apply_update(
        self,
        apply_results: Sequence[Tuple[int, float]],
        prop: np.ndarray,
    ) -> np.ndarray:
        """Activate vertices whose Apply result differs (conditional store).

        Mutates ``prop`` in place; returns activated vertex ids in order.
        """
        activated: List[int] = []
        for vid, result in apply_results:
            if prop[vid] != result:
                prop[vid] = result
                self.ues[self.ue_of(vid)].coalescer.activate(vid)
                activated.append(vid)
        for ue in self.ues:
            ue.coalescer.flush()
        rec = get_recorder()
        if rec.enabled:
            rec.counter("graphdyns.updater.activations").add(len(activated))
        return np.asarray(activated, dtype=np.int64)

    def reset_for_next_iteration(self) -> None:
        """Clear the bitmap (and the VB for accumulating algorithms)."""
        self.bitmap.clear()
        if self.spec.resets_tprop_each_iteration:
            self.vb = [dict() for _ in range(self.config.num_ues)]
