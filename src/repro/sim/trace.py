"""Cycle-activity tracing for micro-models.

A :class:`ActivityTrace` records which unit did what on which cycle and
renders a text timeline (a poor man's waveform viewer), used when
debugging the event-driven models::

    trace = ActivityTrace()
    trace.record(cycle=3, unit="PE0", event="issue", detail="v18 e2")
    print(trace.render_timeline())
"""

from __future__ import annotations

import dataclasses
import warnings
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

__all__ = ["TraceEvent", "ActivityTrace"]


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One recorded action."""

    cycle: int
    unit: str
    event: str
    detail: str = ""


class ActivityTrace:
    """Append-only recording of per-cycle unit activity."""

    def __init__(self, max_events: int = 1_000_000) -> None:
        self.max_events = max_events
        self._events: List[TraceEvent] = []
        self.dropped = 0

    def record(
        self, cycle: int, unit: str, event: str, detail: str = ""
    ) -> None:
        """Record one action.

        Past ``max_events`` the event is dropped and counted in
        :attr:`dropped`; the first drop raises a :class:`ResourceWarning`
        so a truncated trace can't be mistaken for a complete one.
        """
        if len(self._events) >= self.max_events:
            if self.dropped == 0:
                warnings.warn(
                    f"ActivityTrace full ({self.max_events} events); "
                    "further events are dropped and counted in .dropped",
                    ResourceWarning,
                    stacklevel=2,
                )
            self.dropped += 1
            return
        self._events.append(TraceEvent(cycle, unit, event, detail))

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def events_for(self, unit: str) -> List[TraceEvent]:
        """All events of one unit, in recording order."""
        return [e for e in self._events if e.unit == unit]

    def busy_cycles(self, unit: str) -> int:
        """Distinct cycles on which ``unit`` did anything."""
        return len({e.cycle for e in self._events if e.unit == unit})

    def utilization(self, unit: str) -> float:
        """Busy fraction of the traced span."""
        span = self.span()
        if span == 0:
            return 0.0
        return self.busy_cycles(unit) / span

    def span(self) -> int:
        """Cycles from 0 through the last recorded event."""
        if not self._events:
            return 0
        return max(e.cycle for e in self._events) + 1

    def render_timeline(
        self,
        first_cycle: int = 0,
        last_cycle: Optional[int] = None,
        busy_char: str = "#",
        idle_char: str = ".",
    ) -> str:
        """One row per unit, one column per cycle."""
        if not self._events:
            return "(empty trace)"
        if last_cycle is None:
            last_cycle = self.span() - 1
        busy: Dict[str, set] = defaultdict(set)
        for event in self._events:
            busy[event.unit].add(event.cycle)
        width = max(len(unit) for unit in busy)
        lines = []
        header = " " * (width + 1) + "".join(
            str(c % 10) for c in range(first_cycle, last_cycle + 1)
        )
        lines.append(header)
        for unit in sorted(busy):
            row = "".join(
                busy_char if c in busy[unit] else idle_char
                for c in range(first_cycle, last_cycle + 1)
            )
            lines.append(f"{unit.rjust(width)} {row}")
        if self.dropped:
            lines.append(f"(dropped {self.dropped} events past capacity)")
        return "\n".join(lines)

    def summary(self) -> Dict[str, Tuple[int, float]]:
        """Unit -> (busy cycles, utilization)."""
        return {
            unit: (self.busy_cycles(unit), self.utilization(unit))
            for unit in sorted({e.unit for e in self._events})
        }
