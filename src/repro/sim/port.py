"""Throughput-limited ports.

A :class:`Port` models a hardware interface that accepts at most
``width`` items per cycle (e.g. a RAM that serves one vector of ``nSIMT``
elements per cycle, or a crossbar output that accepts one flit per cycle).
Callers ask *when* a batch of items can be accepted; the port tracks its
busy horizon and utilization.
"""

from __future__ import annotations

__all__ = ["Port"]


class Port:
    """A resource serving ``width`` items per cycle, FCFS."""

    def __init__(self, width: int, name: str = "port") -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = width
        self.name = name
        self._next_free_cycle = 0
        self.items_served = 0
        self.busy_cycles = 0

    @property
    def next_free_cycle(self) -> int:
        return self._next_free_cycle

    def request(self, cycle: int, items: int = 1) -> int:
        """Reserve capacity for ``items`` starting no earlier than ``cycle``.

        Returns the cycle at which the whole batch has been served.
        """
        if items < 0:
            raise ValueError("items must be non-negative")
        if items == 0:
            return max(cycle, self._next_free_cycle)
        start = max(cycle, self._next_free_cycle)
        duration = -(-items // self.width)  # ceil division
        self._next_free_cycle = start + duration
        self.items_served += items
        self.busy_cycles += duration
        return self._next_free_cycle

    def utilization(self, total_cycles: int) -> float:
        """Fraction of ``total_cycles`` this port was busy."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)

    def reset(self) -> None:
        self._next_free_cycle = 0
        self.items_served = 0
        self.busy_cycles = 0
