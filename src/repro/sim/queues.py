"""Bounded hardware queues and double buffers.

These model the FIFO structures of the paper's microarchitecture: the
per-PE workload queues (Fig. 4a), the Activating Unit's four 16-entry buffer
queues, and the double-buffered active-vertex store of Section 5.3.2.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, List, TypeVar

T = TypeVar("T")

__all__ = ["BoundedQueue", "QueueFullError", "QueueEmptyError", "DoubleBuffer"]


class QueueFullError(RuntimeError):
    """Push attempted on a full bounded queue (models backpressure)."""


class QueueEmptyError(RuntimeError):
    """Pop attempted on an empty queue."""


class BoundedQueue(Generic[T]):
    """FIFO with a hardware capacity limit and occupancy statistics."""

    def __init__(self, capacity: int, name: str = "queue") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self.total_pushes = 0
        self.total_pops = 0
        self.rejected_pushes = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._items)

    def push(self, item: T) -> None:
        """Enqueue, raising :class:`QueueFullError` when at capacity."""
        if self.is_full:
            self.rejected_pushes += 1
            raise QueueFullError(f"{self.name} full (capacity {self.capacity})")
        self._items.append(item)
        self.total_pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._items))

    def try_push(self, item: T) -> bool:
        """Enqueue if space is available; return whether it succeeded."""
        if self.is_full:
            self.rejected_pushes += 1
            return False
        self.push(item)
        return True

    def pop(self) -> T:
        """Dequeue the oldest item."""
        if self.is_empty:
            raise QueueEmptyError(f"{self.name} empty")
        self.total_pops += 1
        return self._items.popleft()

    def peek(self) -> T:
        """The oldest item without removing it."""
        if self.is_empty:
            raise QueueEmptyError(f"{self.name} empty")
        return self._items[0]

    def drain(self) -> List[T]:
        """Pop everything, oldest first."""
        out = list(self._items)
        self.total_pops += len(self._items)
        self._items.clear()
        return out


class DoubleBuffer(Generic[T]):
    """Two buffers working in ping-pong fashion (Section 5.3.2).

    The Activating Unit fills the *front* buffer while the *back* buffer
    drains to off-chip memory; ``swap`` flips the roles.  Stall pressure is
    observable through :attr:`swaps_while_back_nonempty`.
    """

    def __init__(self, capacity: int, name: str = "dbuf") -> None:
        self.front: BoundedQueue[T] = BoundedQueue(capacity, f"{name}.front")
        self.back: BoundedQueue[T] = BoundedQueue(capacity, f"{name}.back")
        self.name = name
        self.swaps = 0
        self.swaps_while_back_nonempty = 0

    def push(self, item: T) -> bool:
        """Fill the front buffer; returns False (stall) when it is full."""
        return self.front.try_push(item)

    def swap(self) -> None:
        """Flip front and back."""
        if not self.back.is_empty:
            self.swaps_while_back_nonempty += 1
        self.front, self.back = self.back, self.front
        self.swaps += 1

    def drain_back(self) -> List[T]:
        """Write the back buffer out (returns its contents, oldest first)."""
        return self.back.drain()

    @property
    def front_full(self) -> bool:
        return self.front.is_full
