"""Cycle clock shared by the discrete-event micro-models."""

from __future__ import annotations

__all__ = ["Clock"]


class Clock:
    """A monotonically advancing cycle counter.

    All hardware micro-models (Reduce Pipeline, crossbar, queues) share one
    clock so their interactions stay causally ordered.
    """

    def __init__(self, frequency_hz: float = 1e9) -> None:
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        self._cycle = 0
        self.frequency_hz = frequency_hz

    @property
    def cycle(self) -> int:
        """Current cycle number."""
        return self._cycle

    def tick(self, cycles: int = 1) -> int:
        """Advance by ``cycles`` and return the new cycle number."""
        if cycles < 0:
            raise ValueError("cannot tick backwards")
        self._cycle += cycles
        return self._cycle

    def advance_to(self, cycle: int) -> int:
        """Advance to an absolute cycle (no-op if already past it)."""
        if cycle > self._cycle:
            self._cycle = cycle
        return self._cycle

    @property
    def seconds(self) -> float:
        """Wall-clock time represented by the current cycle count."""
        return self._cycle / self.frequency_hz

    def reset(self) -> None:
        """Return to cycle zero."""
        self._cycle = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Clock(cycle={self._cycle}, f={self.frequency_hz:.3g} Hz)"
