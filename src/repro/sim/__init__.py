"""Discrete-event simulation kernel for the hardware micro-models."""

from .clock import Clock
from .engine import Event, EventEngine
from .port import Port
from .queues import BoundedQueue, DoubleBuffer, QueueEmptyError, QueueFullError
from .trace import ActivityTrace, TraceEvent

__all__ = [
    "ActivityTrace",
    "TraceEvent",
    "Clock",
    "Event",
    "EventEngine",
    "Port",
    "BoundedQueue",
    "DoubleBuffer",
    "QueueEmptyError",
    "QueueFullError",
]
