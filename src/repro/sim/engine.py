"""A minimal discrete-event simulation engine.

Used by the exact micro-models (Reduce Pipeline replay, crossbar
arbitration) and their tests.  Deliberately small: an event heap keyed by
cycle, with deterministic FIFO ordering among same-cycle events.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Event", "EventEngine"]


@dataclasses.dataclass(frozen=True)
class Event:
    """A scheduled callback."""

    cycle: int
    action: Callable[[], Any]
    label: str = ""


class EventEngine:
    """Priority-queue event loop over integer cycles.

    Events scheduled for the same cycle run in scheduling order (stable),
    which keeps hardware models deterministic without explicit tie-breaking.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._counter = itertools.count()
        self.current_cycle = 0
        self.events_run = 0

    def schedule(self, delay: int, action: Callable[[], Any], label: str = "") -> None:
        """Schedule ``action`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        event = Event(cycle=self.current_cycle + delay, action=action, label=label)
        heapq.heappush(self._heap, (event.cycle, next(self._counter), event))

    def schedule_at(self, cycle: int, action: Callable[[], Any], label: str = "") -> None:
        """Schedule ``action`` at an absolute cycle (>= now)."""
        if cycle < self.current_cycle:
            raise ValueError("cannot schedule in the past")
        event = Event(cycle=cycle, action=action, label=label)
        heapq.heappush(self._heap, (cycle, next(self._counter), event))

    @property
    def pending(self) -> int:
        return len(self._heap)

    def step(self) -> Optional[Event]:
        """Run the next event; returns it, or None when the heap is empty."""
        if not self._heap:
            return None
        cycle, _, event = heapq.heappop(self._heap)
        self.current_cycle = cycle
        event.action()
        self.events_run += 1
        return event

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until quiescent; returns the final cycle."""
        for _ in range(max_events):
            if self.step() is None:
                return self.current_cycle
        raise RuntimeError("event budget exhausted; livelock suspected")

    def run_until(self, cycle: int) -> int:
        """Run all events scheduled strictly before ``cycle``."""
        while self._heap and self._heap[0][0] < cycle:
            self.step()
        self.current_cycle = max(self.current_cycle, cycle)
        return self.current_cycle
