"""Per-region off-chip traffic ledger.

Figures 11-13 compare the three systems on storage footprint, total data
accessed, and achieved bandwidth.  The ledger separates reads from writes
and regions from one another, and converts between bytes and the paper's
normalized percentages.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Mapping

from .request import AccessPattern, Region

__all__ = ["TrafficLedger"]


@dataclasses.dataclass
class TrafficLedger:
    """Accumulates off-chip bytes by region and direction."""

    read_bytes: Dict[Region, int] = dataclasses.field(
        default_factory=lambda: {r: 0 for r in Region}
    )
    write_bytes: Dict[Region, int] = dataclasses.field(
        default_factory=lambda: {r: 0 for r in Region}
    )

    def add(self, pattern: AccessPattern) -> None:
        """Record one access pattern."""
        book = self.write_bytes if pattern.is_write else self.read_bytes
        book[pattern.region] += pattern.total_bytes

    def add_all(self, patterns: Iterable[AccessPattern]) -> None:
        for pattern in patterns:
            self.add(pattern)

    def region_total(self, region: Region) -> int:
        return self.read_bytes[region] + self.write_bytes[region]

    @property
    def total_read(self) -> int:
        return sum(self.read_bytes.values())

    @property
    def total_write(self) -> int:
        return sum(self.write_bytes.values())

    @property
    def total(self) -> int:
        return self.total_read + self.total_write

    def breakdown(self) -> Mapping[str, int]:
        """Region -> total bytes, for reports."""
        return {
            region.value: self.region_total(region)
            for region in Region
            if self.region_total(region)
        }

    def merge(self, other: "TrafficLedger") -> None:
        """Fold another ledger into this one."""
        for region in Region:
            self.read_bytes[region] += other.read_bytes[region]
            self.write_bytes[region] += other.write_bytes[region]

    def normalized_to(self, baseline: "TrafficLedger") -> float:
        """This ledger's total as a fraction of ``baseline``'s (Fig. 12)."""
        if baseline.total == 0:
            return 0.0
        return self.total / baseline.total
