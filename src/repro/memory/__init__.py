"""Memory substrate: HBM, scratchpads, crossbar, traffic accounting."""

from .request import AccessPattern, Region
from .hbm import HBM1_512GBS, HBM2_900GBS, HBMConfig, HBMModel, ServiceResult
from .scratchpad import BankedScratchpad, ScratchpadConfig
from .crossbar import Crossbar, CrossbarStats, grouped_duplicate_count
from .traffic import TrafficLedger
from .dram_detail import DRAMReferenceModel

__all__ = [
    "AccessPattern",
    "Region",
    "HBM1_512GBS",
    "HBM2_900GBS",
    "HBMConfig",
    "HBMModel",
    "ServiceResult",
    "BankedScratchpad",
    "ScratchpadConfig",
    "Crossbar",
    "CrossbarStats",
    "grouped_duplicate_count",
    "TrafficLedger",
    "DRAMReferenceModel",
]
