"""High Bandwidth Memory timing and energy model.

A Ramulator-class cycle-accurate DRAM model is replaced (see DESIGN.md) by a
channel/row-buffer model that captures the two effects the paper's results
depend on:

* **traffic volume** by region (Fig. 12) -- counted exactly,
* **effective bandwidth** as a function of spatial locality (Fig. 13) -- a
  run of contiguous bytes pays one activate/precharge per DRAM row it
  touches; short random runs therefore waste most of the channel's cycles,
  long streams approach peak bandwidth.

Row-miss penalties overlap across banks; ``bank_parallelism`` sets how many
misses are hidden concurrently, and is the single knob calibrated against
the paper's utilization numbers (Gunrock 31%, GraphDynS 56%).

Energy follows the paper's methodology: a flat 7 pJ/bit (O'Connor, Memory
Forum 2014).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable

import numpy as np

from ..obs import get_recorder
from .request import AccessPattern, Region

#: Fixed bucket edges for the run-length histogram (bytes per contiguous
#: run), 8 B .. 8 MiB in powers of two -- reproducible across runs.
_RUN_BYTES_EDGES = tuple(float(1 << k) for k in range(3, 24))

__all__ = ["HBMConfig", "ServiceResult", "HBMModel", "HBM1_512GBS", "HBM2_900GBS"]


@dataclasses.dataclass(frozen=True)
class HBMConfig:
    """Static parameters of an HBM part, normalized to accelerator cycles.

    Attributes:
        name: part name for reports.
        peak_bytes_per_cycle: aggregate peak bandwidth divided by the
            consumer's clock (512 GB/s at 1 GHz -> 512 B/cycle).
        num_channels: independent channels (HBM1: 8 per stack, 2 stacks).
        row_bytes: DRAM row (page) size per channel.
        row_miss_cycles: activate + precharge penalty in consumer cycles.
        bank_parallelism: average number of row misses whose latency
            overlaps (bank-level parallelism + request reordering).
        min_access_bytes: smallest burst; shorter requests are padded.
        energy_pj_per_bit: access energy (7 pJ/bit for HBM 1.0 per the paper).
        base_latency_cycles: idle-system latency of one access (used for
            latency-bound phases with few requests).
    """

    name: str
    peak_bytes_per_cycle: float
    num_channels: int = 16
    row_bytes: int = 2048
    row_miss_cycles: float = 22.0
    bank_parallelism: float = 8.0
    min_access_bytes: int = 32
    energy_pj_per_bit: float = 7.0
    base_latency_cycles: float = 100.0

    @property
    def channel_bytes_per_cycle(self) -> float:
        return self.peak_bytes_per_cycle / self.num_channels


#: The accelerator-side part of Table 3 (GraphDynS and Graphicionado).
HBM1_512GBS = HBMConfig(name="HBM1-512GB/s", peak_bytes_per_cycle=512.0)

#: The V100's memory system (900 GB/s HBM2), normalized to its 1.25 GHz clock.
HBM2_900GBS = HBMConfig(
    name="HBM2-900GB/s", peak_bytes_per_cycle=900.0 / 1.25, num_channels=32
)


@dataclasses.dataclass
class ServiceResult:
    """Timing outcome of servicing a batch of access patterns."""

    cycles: float
    total_bytes: int
    ideal_cycles: float
    bytes_by_region: Dict[Region, int]

    @property
    def bandwidth_utilization(self) -> float:
        """Achieved fraction of peak bandwidth (Fig. 13's metric)."""
        if self.cycles <= 0:
            return 0.0
        return min(1.0, self.ideal_cycles / self.cycles)


class HBMModel:
    """Stateful HBM instance accumulating traffic and energy."""

    def __init__(self, config: HBMConfig, owner: str = "") -> None:
        self.config = config
        #: Instrumentation label naming the system this memory belongs to
        #: (observability only -- never part of a config digest).
        self.owner = owner
        self.bytes_by_region: Dict[Region, int] = {r: 0 for r in Region}
        self.write_bytes = 0
        self.read_bytes = 0
        self.total_cycles = 0.0
        self.total_ideal_cycles = 0.0

    # ------------------------------------------------------------------
    # Pattern-level timing
    # ------------------------------------------------------------------
    def pattern_cycles(self, pattern: AccessPattern) -> float:
        """Service cycles for one pattern on an otherwise idle memory."""
        cfg = self.config
        if pattern.total_bytes == 0:
            return 0.0
        run = max(pattern.run_bytes, 1.0)
        # Pad short runs to the burst size: an 8-byte random read still
        # transfers a full 32-byte burst.
        padded_run = max(run, float(cfg.min_access_bytes))
        num_runs = max(1.0, pattern.total_bytes / run)
        padded_bytes = num_runs * padded_run

        transfer_cycles = padded_bytes / cfg.peak_bytes_per_cycle
        rows_per_run = max(1.0, padded_run / cfg.row_bytes)
        total_misses = num_runs * rows_per_run
        # Misses overlap across banks and channels.
        overlap = cfg.bank_parallelism * cfg.num_channels
        miss_cycles = total_misses * cfg.row_miss_cycles / overlap
        return transfer_cycles + miss_cycles

    def ideal_cycles(self, total_bytes: float) -> float:
        """Cycles at peak bandwidth (the Fig. 13 denominator)."""
        return total_bytes / self.config.peak_bytes_per_cycle

    def service(self, patterns: Iterable[AccessPattern]) -> ServiceResult:
        """Service patterns that share the memory system concurrently.

        Patterns within one call are assumed to interleave across channels,
        so their service times add (bandwidth is the shared resource).
        Accumulates global traffic/energy state.

        Timing is computed through the batched kernel
        (:mod:`repro.kernels.hbm_batch`) -- one array expression over the
        whole batch instead of one Python call per pattern --
        bit-identical to :meth:`service_scalar`.
        """
        from ..kernels.hbm_batch import batch_cycles_sum, pattern_cycles_batch

        patterns = list(patterns)
        count = len(patterns)
        total_arr = np.fromiter(
            (p.total_bytes for p in patterns), dtype=np.float64, count=count
        )
        run_arr = np.fromiter(
            (p.run_bytes for p in patterns), dtype=np.float64, count=count
        )
        cycles = batch_cycles_sum(
            pattern_cycles_batch(self.config, total_arr, run_arr)
        )
        total_bytes = 0
        by_region: Dict[Region, int] = {}
        for pattern in patterns:
            total_bytes += pattern.total_bytes
            by_region[pattern.region] = (
                by_region.get(pattern.region, 0) + pattern.total_bytes
            )
            self.bytes_by_region[pattern.region] += pattern.total_bytes
            if pattern.is_write:
                self.write_bytes += pattern.total_bytes
            else:
                self.read_bytes += pattern.total_bytes
        ideal = self.ideal_cycles(total_bytes)
        self.total_cycles += cycles
        self.total_ideal_cycles += ideal
        rec = get_recorder()
        if rec.enabled and count:
            self._record_service(rec, count, total_arr, run_arr, by_region)
        return ServiceResult(
            cycles=cycles,
            total_bytes=total_bytes,
            ideal_cycles=ideal,
            bytes_by_region=by_region,
        )

    def _record_service(
        self,
        rec,
        count: int,
        total_arr: np.ndarray,
        run_arr: np.ndarray,
        by_region: Dict[Region, int],
    ) -> None:
        """Instrument one serviced batch (recorder enabled only).

        Row hits/misses follow the same closed form the timing kernel
        uses: each run pays one activate per DRAM row it touches; the
        remaining bursts are row-buffer hits.  Only :meth:`service` is
        instrumented -- :meth:`service_scalar` stays a bare reference
        path for the equivalence tests.
        """
        cfg = self.config
        prefix = f"hbm.{self.owner}" if self.owner else "hbm"
        run = np.maximum(run_arr, 1.0)
        padded_run = np.maximum(run, float(cfg.min_access_bytes))
        num_runs = np.maximum(1.0, total_arr / run)
        rows_per_run = np.maximum(1.0, padded_run / cfg.row_bytes)
        row_misses = float((num_runs * rows_per_run).sum())
        bursts = float(
            (num_runs * padded_run).sum() / float(cfg.min_access_bytes)
        )
        rec.counter(f"{prefix}.requests").add(count)
        rec.counter(f"{prefix}.bytes").add(float(total_arr.sum()))
        rec.counter(f"{prefix}.row_misses").add(row_misses)
        rec.counter(f"{prefix}.row_hits").add(max(bursts - row_misses, 0.0))
        for region, nbytes in by_region.items():
            rec.counter(f"{prefix}.bytes.{region.value}").add(nbytes)
        rec.histogram(
            f"{prefix}.run_bytes", edges=_RUN_BYTES_EDGES
        ).observe_many(run_arr)
        rec.gauge(f"{prefix}.bandwidth_utilization").set(
            self.bandwidth_utilization
        )

    def service_scalar(self, patterns: Iterable[AccessPattern]) -> ServiceResult:
        """Retained per-pattern reference for :meth:`service`.

        Identical accounting with one :meth:`pattern_cycles` call per
        pattern; the equivalence tests replay batches through both paths.
        """
        cycles = 0.0
        total_bytes = 0
        by_region: Dict[Region, int] = {}
        for pattern in patterns:
            cycles += self.pattern_cycles(pattern)
            total_bytes += pattern.total_bytes
            by_region[pattern.region] = (
                by_region.get(pattern.region, 0) + pattern.total_bytes
            )
            self.bytes_by_region[pattern.region] += pattern.total_bytes
            if pattern.is_write:
                self.write_bytes += pattern.total_bytes
            else:
                self.read_bytes += pattern.total_bytes
        ideal = self.ideal_cycles(total_bytes)
        self.total_cycles += cycles
        self.total_ideal_cycles += ideal
        return ServiceResult(
            cycles=cycles,
            total_bytes=total_bytes,
            ideal_cycles=ideal,
            bytes_by_region=by_region,
        )

    # ------------------------------------------------------------------
    # Whole-run accounting
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def energy_pj(self) -> float:
        """Total access energy at ``energy_pj_per_bit``."""
        return self.total_bytes * 8 * self.config.energy_pj_per_bit

    @property
    def bandwidth_utilization(self) -> float:
        """Run-aggregate utilization (ideal cycles / modeled cycles)."""
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.total_ideal_cycles / self.total_cycles)

    def reset(self) -> None:
        self.bytes_by_region = {r: 0 for r in Region}
        self.write_bytes = 0
        self.read_bytes = 0
        self.total_cycles = 0.0
        self.total_ideal_cycles = 0.0
