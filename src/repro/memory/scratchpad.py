"""On-chip scratchpad (eDRAM) buffer models.

GraphDynS has three scratchpad families (Section 4.2.1):

* **VPB** (Vertex Prefetching Buffer) -- 16 RAMs, one per DE/PE pair,
* **EPB** (Edge Prefetching Buffer)   -- 16 RAMs, one per PE,
* **VB**  (Vertex Buffer)             -- 128 x 256 KB dual-ported eDRAM,
  one per Updating Element, holding all temporary vertex properties.

Banked buffers serve one vector access per bank per cycle; the hash
placement (``bank = key % num_banks``) mirrors Section 5.2.2.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from ..sim.port import Port

__all__ = ["ScratchpadConfig", "BankedScratchpad"]


@dataclasses.dataclass(frozen=True)
class ScratchpadConfig:
    """Geometry and timing of a banked on-chip buffer."""

    name: str
    num_banks: int
    bank_bytes: int
    access_latency_cycles: int = 1
    items_per_bank_per_cycle: int = 8  # nSIMT-wide vector port
    dual_ported: bool = False

    @property
    def total_bytes(self) -> int:
        return self.num_banks * self.bank_bytes

    def capacity_items(self, item_bytes: int) -> int:
        """How many records of ``item_bytes`` fit across all banks."""
        if item_bytes <= 0:
            raise ValueError("item_bytes must be positive")
        return self.total_bytes // item_bytes


class BankedScratchpad:
    """A hash-banked scratchpad with per-bank vector ports.

    Provides both a per-access interface (used by event-driven micro-models)
    and a vectorized batch interface (used by the per-iteration timing
    layer).
    """

    def __init__(self, config: ScratchpadConfig) -> None:
        self.config = config
        ports_per_bank = 2 if config.dual_ported else 1
        self._ports: List[Port] = [
            Port(
                width=config.items_per_bank_per_cycle * ports_per_bank,
                name=f"{config.name}.bank{i}",
            )
            for i in range(config.num_banks)
        ]
        self.total_accesses = 0

    @property
    def num_banks(self) -> int:
        return self.config.num_banks

    def bank_of(self, key: int) -> int:
        """Hash placement: ``bank = key % num_banks`` (Section 5.2.2)."""
        return key % self.config.num_banks

    def access(self, cycle: int, key: int, items: int = 1) -> int:
        """Serve ``items`` from the bank owning ``key``.

        Returns the completion cycle (arbitration + access latency).
        """
        self.total_accesses += items
        done = self._ports[self.bank_of(key)].request(cycle, items)
        return done + self.config.access_latency_cycles - 1

    def batch_cycles(self, keys: np.ndarray) -> int:
        """Cycles to serve one access per key, banked by hash.

        The binding constraint is the most-loaded bank: with perfect
        pipelining each bank serves ``items_per_bank_per_cycle`` per cycle,
        so the batch takes ``ceil(max_bank_load / width)`` cycles.
        """
        if keys.size == 0:
            return 0
        loads = np.bincount(
            keys % self.config.num_banks, minlength=self.config.num_banks
        )
        width = self.config.items_per_bank_per_cycle * (
            2 if self.config.dual_ported else 1
        )
        self.total_accesses += int(keys.size)
        return int(-(-int(loads.max()) // width))

    def utilization(self, total_cycles: int) -> float:
        """Mean port utilization across banks."""
        if total_cycles <= 0 or not self._ports:
            return 0.0
        return float(
            np.mean([p.utilization(total_cycles) for p in self._ports])
        )

    def reset(self) -> None:
        for port in self._ports:
            port.reset()
        self.total_accesses = 0
