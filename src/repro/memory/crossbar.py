"""Crossbar switch model (the Updater's 128-radix switch).

Every cycle the Processor emits up to ``issue_width`` edge results (128 SIMT
lanes); the crossbar routes each to the Updating Element owning the
destination vertex (``ue = dst % num_outputs``).  Each output accepts one
flit per cycle, so a cycle whose batch maps several results onto one UE
serializes on that output.

Two interfaces:

* :meth:`route_batch` -- exact vectorized replay of an iteration's whole
  destination stream, returning the serialization cycles and conflict
  statistics (drives Fig. 14e, the UE-count scaling study).
* :meth:`route` -- per-flit event interface used by the micro-model tests.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

__all__ = ["CrossbarStats", "Crossbar", "grouped_duplicate_count"]


def grouped_duplicate_count(dst: np.ndarray, group_width: int) -> int:
    """Same-address collisions within each issue group of ``group_width``.

    Counts flits whose destination *vertex* (not just UE) already appears in
    the same issue group -- the read-after-write hazards a stall-on-conflict
    reducer pays for and the zero-stall Reduce Pipeline absorbs.
    """
    dst = np.asarray(dst, dtype=np.int64)
    n = dst.size
    if n == 0 or group_width < 2:
        return 0
    group_ids = np.arange(n, dtype=np.int64) // group_width
    order = np.lexsort((dst, group_ids))
    sorted_groups = group_ids[order]
    sorted_dst = dst[order]
    same = (sorted_groups[1:] == sorted_groups[:-1]) & (
        sorted_dst[1:] == sorted_dst[:-1]
    )
    return int(np.count_nonzero(same))


@dataclasses.dataclass
class CrossbarStats:
    """Outcome of routing a destination stream through the crossbar."""

    cycles: int
    flits: int
    ideal_cycles: int
    max_output_load: int
    conflict_flits: int

    @property
    def efficiency(self) -> float:
        """Ideal/actual cycle ratio; 1.0 means no output conflicts."""
        if self.cycles == 0:
            return 1.0
        return self.ideal_cycles / self.cycles

    @property
    def conflict_rate(self) -> float:
        """Fraction of flits that waited behind a same-output flit."""
        if self.flits == 0:
            return 0.0
        return self.conflict_flits / self.flits


class Crossbar:
    """An ``issue_width`` x ``num_outputs`` crossbar, one flit/output/cycle."""

    def __init__(self, num_outputs: int, issue_width: int, name: str = "xbar") -> None:
        if num_outputs < 1 or issue_width < 1:
            raise ValueError("num_outputs and issue_width must be >= 1")
        self.num_outputs = num_outputs
        self.issue_width = issue_width
        self.name = name
        self.total_flits = 0
        self.total_cycles = 0

    def output_of(self, dst_vertex: int) -> int:
        """Hash route: ``UE = vertex % num_outputs`` (Section 5.2.2)."""
        return dst_vertex % self.num_outputs

    def route_batch(
        self, dst_vertices: np.ndarray, elastic: bool = True
    ) -> CrossbarStats:
        """Route an iteration's destination stream, issue_width per cycle.

        With ``elastic=True`` (the hardware has small FIFOs between crossbar
        outputs and UEs, Fig. 4d), transient per-cycle collisions are
        absorbed and sustained throughput is bound by the *busiest output's
        total load*: ``cycles = max(num_groups, max_total_output_load)``.

        With ``elastic=False`` (no buffering), every issue group serializes
        on its most-contended output: ``cycles = sum(per_group_max)`` -- the
        pessimistic model used for sensitivity checks.
        """
        n = int(dst_vertices.size)
        if n == 0:
            return CrossbarStats(0, 0, 0, 0, 0)
        outputs = (dst_vertices % self.num_outputs).astype(np.int64)
        num_groups = -(-n // self.issue_width)
        total_loads = np.bincount(outputs, minlength=self.num_outputs)
        max_total = int(total_loads.max())
        if elastic:
            cycles = max(num_groups, max_total)
            # Conflicts: flits beyond a perfectly even spread.
            conflict_flits = int(
                (total_loads - -(-n // self.num_outputs)).clip(min=0).sum()
            )
            stats = CrossbarStats(
                cycles=cycles,
                flits=n,
                ideal_cycles=num_groups,
                max_output_load=max_total,
                conflict_flits=conflict_flits,
            )
        else:
            pad = num_groups * self.issue_width - n
            padded = outputs
            if pad:
                # Padding flits go to distinct virtual outputs so they
                # never add contention.
                padded = np.concatenate(
                    [outputs, np.full(pad, -1, dtype=np.int64)]
                )
            group_ids = np.repeat(
                np.arange(num_groups, dtype=np.int64), self.issue_width
            )
            valid = padded >= 0
            counts = np.zeros((num_groups, self.num_outputs), dtype=np.int32)
            np.add.at(counts, (group_ids[valid], padded[valid]), 1)
            per_group_max = counts.max(axis=1)
            cycles = int(per_group_max.sum())
            stats = CrossbarStats(
                cycles=cycles,
                flits=n,
                ideal_cycles=num_groups,
                max_output_load=int(per_group_max.max()),
                conflict_flits=int((counts - 1).clip(min=0).sum()),
            )
        self.total_flits += n
        self.total_cycles += stats.cycles
        return stats

    def route(self, cycle: int, dst_vertex: int, busy_until: Dict[int, int]) -> int:
        """Route one flit; ``busy_until`` tracks per-output availability.

        Returns the cycle the flit is delivered.  Used by event-driven
        micro-models and tests.
        """
        out = self.output_of(dst_vertex)
        start = max(cycle, busy_until.get(out, 0))
        busy_until[out] = start + 1
        self.total_flits += 1
        return start + 1
