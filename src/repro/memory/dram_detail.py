"""Bank-state DRAM reference model.

The production HBM model (:mod:`repro.memory.hbm`) is an analytic formula:
transfer time plus overlapped row-miss penalties as a function of run
length.  This module is its *reference*: an explicit per-channel, per-bank
open-row state machine servicing an address trace request by request, in
the spirit of the Ramulator role in the paper's methodology.  Tests drive
both models with equivalent workloads and check the formula tracks the
state machine across the locality spectrum.

Simplifications vs a full DRAM model (documented):
* FCFS per channel (no reordering) -- conservative for random streams;
* a single rank; refresh ignored (both models ignore it identically);
* closed timing expressed in consumer clock cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Tuple

import numpy as np

from .hbm import HBMConfig

__all__ = ["BankState", "DRAMReferenceModel", "sequential_trace", "random_trace"]


@dataclasses.dataclass
class BankState:
    """One bank: which row is open and when the bank is next free."""

    open_row: int = -1
    busy_until: float = 0.0


class DRAMReferenceModel:
    """Explicit bank-state servicing of an address trace."""

    def __init__(
        self,
        config: HBMConfig,
        banks_per_channel: int = 8,
        t_cas: float = 4.0,
    ) -> None:
        self.config = config
        self.banks_per_channel = banks_per_channel
        self.t_cas = t_cas
        self._channels: List[List[BankState]] = [
            [BankState() for _ in range(banks_per_channel)]
            for _ in range(config.num_channels)
        ]
        self._channel_time = np.zeros(config.num_channels)
        self.row_hits = 0
        self.row_misses = 0

    # ------------------------------------------------------------------
    def _locate(self, address: int) -> Tuple[int, int, int]:
        """Address -> (channel, bank, row).

        Row-granular channel interleave (``[row | bank | channel |
        column]`` with the column field spanning a whole row): contiguous
        runs stay on one channel long enough to harvest row-buffer hits,
        while rows rotate across channels for parallelism -- the mapping
        HBM systems use to preserve spatial locality.
        """
        cfg = self.config
        channel = (address // cfg.row_bytes) % cfg.num_channels
        row = address // (cfg.row_bytes * cfg.num_channels)
        bank = row % self.banks_per_channel
        return channel, bank, row

    def access(self, address: int, num_bytes: int) -> None:
        """Service one request (split into bursts)."""
        cfg = self.config
        bursts = max(1, -(-num_bytes // cfg.min_access_bytes))
        burst_cycles = cfg.min_access_bytes / cfg.channel_bytes_per_cycle
        for i in range(bursts):
            burst_address = address + i * cfg.min_access_bytes
            channel, bank_index, row = self._locate(burst_address)
            bank = self._channels[channel][bank_index]
            # A row miss occupies only its bank during activate/precharge
            # (other banks keep the bus busy); the data burst then
            # serializes on the channel bus.
            bank_available = bank.busy_until
            if bank.open_row != row:
                self.row_misses += 1
                bank_available += cfg.row_miss_cycles
                bank.open_row = row
            else:
                self.row_hits += 1
            burst_start = max(bank_available, self._channel_time[channel])
            burst_end = burst_start + burst_cycles
            bank.busy_until = burst_end
            self._channel_time[channel] = burst_end

    def service_trace(self, trace: Iterable[Tuple[int, int]]) -> float:
        """Service ``(address, bytes)`` requests; returns total cycles."""
        for address, num_bytes in trace:
            self.access(address, num_bytes)
        return self.total_cycles

    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> float:
        """Completion time: when the busiest channel finishes."""
        bank_max = max(
            (b.busy_until for ch in self._channels for b in ch), default=0.0
        )
        return float(max(self._channel_time.max(initial=0.0), bank_max))

    @property
    def hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        if total == 0:
            return 0.0
        return self.row_hits / total

    def reset(self) -> None:
        for channel in self._channels:
            for bank in channel:
                bank.open_row = -1
                bank.busy_until = 0.0
        self._channel_time[:] = 0.0
        self.row_hits = 0
        self.row_misses = 0


# ----------------------------------------------------------------------
# Trace builders for the validation tests
# ----------------------------------------------------------------------
def sequential_trace(
    total_bytes: int, request_bytes: int = 256, base: int = 0
) -> List[Tuple[int, int]]:
    """A pure stream: back-to-back requests over a contiguous region."""
    return [
        (base + offset, min(request_bytes, total_bytes - offset))
        for offset in range(0, total_bytes, request_bytes)
    ]


def random_trace(
    num_requests: int,
    request_bytes: int = 8,
    address_space: int = 1 << 30,
    seed: int = 0,
) -> List[Tuple[int, int]]:
    """Uniformly random short requests (pointer-chasing traversal)."""
    rng = np.random.default_rng(seed)
    addresses = rng.integers(
        0, address_space // request_bytes, size=num_requests
    ) * request_bytes
    return [(int(a), request_bytes) for a in addresses]
