"""Memory request vocabulary shared by the timing models.

The paper's traffic analysis (Figs. 11-13) distinguishes the graph-data
regions of Fig. 1: the offset array, the edge array, vertex properties, and
the active-vertex array, plus framework metadata (Gunrock's preprocessing
structures).  Every off-chip byte in the models is tagged with one of these
regions so the per-figure accounting falls out directly.
"""

from __future__ import annotations

import dataclasses
import enum

__all__ = ["Region", "AccessPattern"]


class Region(enum.Enum):
    """Off-chip memory regions of the CSR layout (Fig. 1b)."""

    OFFSET = "offset"
    EDGE = "edge"
    VERTEX_PROP = "vertex_prop"
    TEMP_PROP = "temp_prop"
    ACTIVE_VERTEX = "active_vertex"
    METADATA = "metadata"


@dataclasses.dataclass(frozen=True)
class AccessPattern:
    """A batch of off-chip accesses with a common spatial structure.

    Rather than issuing per-edge requests (intractable in Python at graph
    scale), timing models describe each iteration's traffic as a handful of
    patterns: *how many bytes*, in *runs of what contiguous length*.  Run
    length is what determines row-buffer behaviour and therefore effective
    bandwidth -- an 8-byte random access and an 8-KB stream differ by an
    order of magnitude in efficiency.

    Attributes:
        region: which data structure is being accessed.
        total_bytes: bytes moved by the whole batch.
        run_bytes: average contiguous run length; ``total_bytes`` for a pure
            stream, the record size for pure random access.
        is_write: writes count toward traffic and energy identically but are
            reported separately.
    """

    region: Region
    total_bytes: int
    run_bytes: float
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        if self.run_bytes <= 0 and self.total_bytes > 0:
            raise ValueError("run_bytes must be positive")

    @property
    def num_runs(self) -> float:
        """Approximate number of contiguous runs in the batch."""
        if self.total_bytes == 0:
            return 0.0
        return max(1.0, self.total_bytes / self.run_bytes)
